// Selection predicates with the paper's undefined-item semantics:
// "When the database is searched for data that meet certain selection
// criteria, an undefined object matches nothing." Every value-inspecting
// predicate therefore evaluates to false on objects without a value.
//
// Predicates built from the static atoms and combinators carry a *shape*
// tree describing their structure; the query planner inspects shapes to
// rewrite extent scans into attribute-index lookups. A predicate built
// from a raw function is opaque (kOpaque): alone it forces a scan, but
// combinators keep it as an opaque node in the tree, so a conjunction
// with a sargable atom still plans an index probe. The shape is advisory
// for planning, never for semantics: the planner re-evaluates the full
// predicate on every index candidate.

#ifndef SEED_QUERY_PREDICATE_H_
#define SEED_QUERY_PREDICATE_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/database.h"

namespace seed::query {

struct PredicateShape;
using PredicateShapePtr = std::shared_ptr<const PredicateShape>;

/// Structural description of a predicate, for the planner.
struct PredicateShape {
  enum class Kind {
    kOpaque,  // user function; nothing is known
    kTrue,
    kHasValue,
    kValueEquals,    // value: the compared constant
    kValueContains,  // text: the needle
    kIntLess,        // bound
    kIntGreater,     // bound
    kNameIs,         // text
    kNameContains,   // text
    kOfClass,
    kOnSubObject,  // text: role; children[0]: inner predicate
    kAnd,          // children
    kOr,           // children
    kNot,          // children[0]
  };

  Kind kind = Kind::kOpaque;
  core::Value value;
  std::int64_t bound = 0;
  std::string text;
  std::vector<PredicateShapePtr> children;
};

class Predicate {
 public:
  using Fn = std::function<bool(const core::Database&, ObjectId)>;

  Predicate() : fn_([](const core::Database&, ObjectId) { return true; }) {
    auto shape = std::make_shared<PredicateShape>();
    shape->kind = PredicateShape::Kind::kTrue;
    shape_ = std::move(shape);
  }
  /// Opaque predicate from a raw function (planner falls back to scans).
  explicit Predicate(Fn fn) : fn_(std::move(fn)) {}

  bool Eval(const core::Database& db, ObjectId obj) const {
    return fn_(db, obj);
  }

  /// The shape tree, or nullptr for opaque predicates.
  const PredicateShape* shape() const { return shape_.get(); }

  // --- Atoms -----------------------------------------------------------------

  static Predicate True();
  /// Object carries a defined value.
  static Predicate HasValue();
  /// Value equals `v` (false on undefined).
  static Predicate ValueEquals(core::Value v);
  /// String value contains `needle` (false on undefined or non-string).
  static Predicate ValueContains(std::string needle);
  /// Integer value compares against `v` (false on undefined/non-int).
  static Predicate IntLess(std::int64_t v);
  static Predicate IntGreater(std::int64_t v);
  /// Independent object name equals / contains.
  static Predicate NameIs(std::string name);
  static Predicate NameContains(std::string needle);
  /// Object's class is `cls` or a specialization of it.
  static Predicate OfClass(ClassId cls, bool include_specializations = true);
  /// The object's sub-object in `role` exists and satisfies `p`
  /// (false when the sub-object is missing — an undefined sub-object
  /// matches nothing).
  static Predicate OnSubObject(std::string role, Predicate p);

  // --- Combinators -----------------------------------------------------------

  Predicate And(Predicate other) const;
  Predicate Or(Predicate other) const;
  Predicate Not() const;

 private:
  Predicate(Fn fn, PredicateShapePtr shape)
      : fn_(std::move(fn)), shape_(std::move(shape)) {}

  /// This predicate's shape, or a kOpaque node when none exists, so
  /// combinators keep the tree: And(sargable, opaque) still plans an
  /// index probe on the sargable conjunct (the residual re-eval covers
  /// the opaque part).
  PredicateShapePtr ShapeOrOpaque() const;

  Fn fn_;
  PredicateShapePtr shape_;
};

}  // namespace seed::query

#endif  // SEED_QUERY_PREDICATE_H_
