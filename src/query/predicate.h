// Selection predicates with the paper's undefined-item semantics:
// "When the database is searched for data that meet certain selection
// criteria, an undefined object matches nothing." Every value-inspecting
// predicate therefore evaluates to false on objects without a value.

#ifndef SEED_QUERY_PREDICATE_H_
#define SEED_QUERY_PREDICATE_H_

#include <functional>
#include <memory>
#include <string>

#include "core/database.h"

namespace seed::query {

class Predicate {
 public:
  using Fn = std::function<bool(const core::Database&, ObjectId)>;

  Predicate() : fn_([](const core::Database&, ObjectId) { return true; }) {}
  explicit Predicate(Fn fn) : fn_(std::move(fn)) {}

  bool Eval(const core::Database& db, ObjectId obj) const {
    return fn_(db, obj);
  }

  // --- Atoms -----------------------------------------------------------------

  static Predicate True();
  /// Object carries a defined value.
  static Predicate HasValue();
  /// Value equals `v` (false on undefined).
  static Predicate ValueEquals(core::Value v);
  /// String value contains `needle` (false on undefined or non-string).
  static Predicate ValueContains(std::string needle);
  /// Integer value compares against `v` (false on undefined/non-int).
  static Predicate IntLess(std::int64_t v);
  static Predicate IntGreater(std::int64_t v);
  /// Independent object name equals / contains.
  static Predicate NameIs(std::string name);
  static Predicate NameContains(std::string needle);
  /// Object's class is `cls` or a specialization of it.
  static Predicate OfClass(ClassId cls, bool include_specializations = true);
  /// The object's sub-object in `role` exists and satisfies `p`
  /// (false when the sub-object is missing — an undefined sub-object
  /// matches nothing).
  static Predicate OnSubObject(std::string role, Predicate p);

  // --- Combinators -------------------------------------------------------------

  Predicate And(Predicate other) const;
  Predicate Or(Predicate other) const;
  Predicate Not() const;

 private:
  Fn fn_;
};

}  // namespace seed::query

#endif  // SEED_QUERY_PREDICATE_H_
