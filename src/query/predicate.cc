#include "query/predicate.h"

namespace seed::query {

using core::Database;
using core::ObjectItem;

namespace {

/// Fetches the live item or nullptr.
const ObjectItem* Live(const Database& db, ObjectId id) {
  auto obj = db.GetObject(id);
  return obj.ok() ? *obj : nullptr;
}

}  // namespace

Predicate Predicate::True() { return Predicate(); }

Predicate Predicate::HasValue() {
  return Predicate([](const Database& db, ObjectId id) {
    const ObjectItem* obj = Live(db, id);
    return obj != nullptr && obj->value.defined();
  });
}

Predicate Predicate::ValueEquals(core::Value v) {
  return Predicate([v = std::move(v)](const Database& db, ObjectId id) {
    const ObjectItem* obj = Live(db, id);
    return obj != nullptr && obj->value.defined() && obj->value == v;
  });
}

Predicate Predicate::ValueContains(std::string needle) {
  return Predicate(
      [needle = std::move(needle)](const Database& db, ObjectId id) {
        const ObjectItem* obj = Live(db, id);
        return obj != nullptr && obj->value.is_string() &&
               obj->value.as_string().find(needle) != std::string::npos;
      });
}

Predicate Predicate::IntLess(std::int64_t v) {
  return Predicate([v](const Database& db, ObjectId id) {
    const ObjectItem* obj = Live(db, id);
    return obj != nullptr && obj->value.is_int() && obj->value.as_int() < v;
  });
}

Predicate Predicate::IntGreater(std::int64_t v) {
  return Predicate([v](const Database& db, ObjectId id) {
    const ObjectItem* obj = Live(db, id);
    return obj != nullptr && obj->value.is_int() && obj->value.as_int() > v;
  });
}

Predicate Predicate::NameIs(std::string name) {
  return Predicate([name = std::move(name)](const Database& db, ObjectId id) {
    const ObjectItem* obj = Live(db, id);
    return obj != nullptr && obj->is_independent() && obj->name == name;
  });
}

Predicate Predicate::NameContains(std::string needle) {
  return Predicate(
      [needle = std::move(needle)](const Database& db, ObjectId id) {
        const ObjectItem* obj = Live(db, id);
        return obj != nullptr && obj->is_independent() &&
               obj->name.find(needle) != std::string::npos;
      });
}

Predicate Predicate::OfClass(ClassId cls, bool include_specializations) {
  return Predicate(
      [cls, include_specializations](const Database& db, ObjectId id) {
        const ObjectItem* obj = Live(db, id);
        if (obj == nullptr) return false;
        if (!include_specializations) return obj->cls == cls;
        return db.schema()->IsSameOrSpecializationOf(obj->cls, cls);
      });
}

Predicate Predicate::OnSubObject(std::string role, Predicate p) {
  return Predicate(
      [role = std::move(role), p = std::move(p)](const Database& db,
                                                 ObjectId id) {
        for (ObjectId sub : db.SubObjects(id, role)) {
          if (p.Eval(db, sub)) return true;
        }
        return false;  // missing (undefined) sub-object matches nothing
      });
}

Predicate Predicate::And(Predicate other) const {
  return Predicate(
      [a = *this, b = std::move(other)](const Database& db, ObjectId id) {
        return a.Eval(db, id) && b.Eval(db, id);
      });
}

Predicate Predicate::Or(Predicate other) const {
  return Predicate(
      [a = *this, b = std::move(other)](const Database& db, ObjectId id) {
        return a.Eval(db, id) || b.Eval(db, id);
      });
}

Predicate Predicate::Not() const {
  return Predicate([a = *this](const Database& db, ObjectId id) {
    return !a.Eval(db, id);
  });
}

}  // namespace seed::query
