#include "query/predicate.h"

namespace seed::query {

using core::Database;
using core::ObjectItem;

namespace {

/// Fetches the live item or nullptr.
const ObjectItem* Live(const Database& db, ObjectId id) {
  auto obj = db.GetObject(id);
  return obj.ok() ? *obj : nullptr;
}

PredicateShapePtr MakeShape(PredicateShape::Kind kind) {
  auto shape = std::make_shared<PredicateShape>();
  shape->kind = kind;
  return shape;
}

}  // namespace

Predicate Predicate::True() { return Predicate(); }

Predicate Predicate::HasValue() {
  return Predicate(
      [](const Database& db, ObjectId id) {
        const ObjectItem* obj = Live(db, id);
        return obj != nullptr && obj->value.defined();
      },
      MakeShape(PredicateShape::Kind::kHasValue));
}

Predicate Predicate::ValueEquals(core::Value v) {
  auto shape = std::make_shared<PredicateShape>();
  shape->kind = PredicateShape::Kind::kValueEquals;
  shape->value = v;
  return Predicate(
      [v = std::move(v)](const Database& db, ObjectId id) {
        const ObjectItem* obj = Live(db, id);
        return obj != nullptr && obj->value.defined() && obj->value == v;
      },
      std::move(shape));
}

Predicate Predicate::ValueContains(std::string needle) {
  auto shape = std::make_shared<PredicateShape>();
  shape->kind = PredicateShape::Kind::kValueContains;
  shape->text = needle;
  return Predicate(
      [needle = std::move(needle)](const Database& db, ObjectId id) {
        const ObjectItem* obj = Live(db, id);
        return obj != nullptr && obj->value.is_string() &&
               obj->value.as_string().find(needle) != std::string::npos;
      },
      std::move(shape));
}

Predicate Predicate::IntLess(std::int64_t v) {
  auto shape = std::make_shared<PredicateShape>();
  shape->kind = PredicateShape::Kind::kIntLess;
  shape->bound = v;
  return Predicate(
      [v](const Database& db, ObjectId id) {
        const ObjectItem* obj = Live(db, id);
        return obj != nullptr && obj->value.is_int() &&
               obj->value.as_int() < v;
      },
      std::move(shape));
}

Predicate Predicate::IntGreater(std::int64_t v) {
  auto shape = std::make_shared<PredicateShape>();
  shape->kind = PredicateShape::Kind::kIntGreater;
  shape->bound = v;
  return Predicate(
      [v](const Database& db, ObjectId id) {
        const ObjectItem* obj = Live(db, id);
        return obj != nullptr && obj->value.is_int() &&
               obj->value.as_int() > v;
      },
      std::move(shape));
}

Predicate Predicate::NameIs(std::string name) {
  auto shape = std::make_shared<PredicateShape>();
  shape->kind = PredicateShape::Kind::kNameIs;
  shape->text = name;
  return Predicate(
      [name = std::move(name)](const Database& db, ObjectId id) {
        const ObjectItem* obj = Live(db, id);
        return obj != nullptr && obj->is_independent() && obj->name == name;
      },
      std::move(shape));
}

Predicate Predicate::NameContains(std::string needle) {
  auto shape = std::make_shared<PredicateShape>();
  shape->kind = PredicateShape::Kind::kNameContains;
  shape->text = needle;
  return Predicate(
      [needle = std::move(needle)](const Database& db, ObjectId id) {
        const ObjectItem* obj = Live(db, id);
        return obj != nullptr && obj->is_independent() &&
               obj->name.find(needle) != std::string::npos;
      },
      std::move(shape));
}

Predicate Predicate::OfClass(ClassId cls, bool include_specializations) {
  return Predicate(
      [cls, include_specializations](const Database& db, ObjectId id) {
        const ObjectItem* obj = Live(db, id);
        if (obj == nullptr) return false;
        if (!include_specializations) return obj->cls == cls;
        return db.schema()->IsSameOrSpecializationOf(obj->cls, cls);
      },
      MakeShape(PredicateShape::Kind::kOfClass));
}

Predicate Predicate::OnSubObject(std::string role, Predicate p) {
  auto shape = std::make_shared<PredicateShape>();
  shape->kind = PredicateShape::Kind::kOnSubObject;
  shape->text = role;
  shape->children.push_back(p.ShapeOrOpaque());
  return Predicate(
      [role = std::move(role), p = std::move(p)](const Database& db,
                                                 ObjectId id) {
        for (ObjectId sub : db.SubObjects(id, role)) {
          if (p.Eval(db, sub)) return true;
        }
        return false;  // missing (undefined) sub-object matches nothing
      },
      std::move(shape));
}

Predicate Predicate::And(Predicate other) const {
  auto shape = std::make_shared<PredicateShape>();
  shape->kind = PredicateShape::Kind::kAnd;
  shape->children = {ShapeOrOpaque(), other.ShapeOrOpaque()};
  return Predicate(
      [a = *this, b = std::move(other)](const Database& db, ObjectId id) {
        return a.Eval(db, id) && b.Eval(db, id);
      },
      std::move(shape));
}

Predicate Predicate::Or(Predicate other) const {
  auto shape = std::make_shared<PredicateShape>();
  shape->kind = PredicateShape::Kind::kOr;
  shape->children = {ShapeOrOpaque(), other.ShapeOrOpaque()};
  return Predicate(
      [a = *this, b = std::move(other)](const Database& db, ObjectId id) {
        return a.Eval(db, id) || b.Eval(db, id);
      },
      std::move(shape));
}

Predicate Predicate::Not() const {
  auto shape = std::make_shared<PredicateShape>();
  shape->kind = PredicateShape::Kind::kNot;
  shape->children = {ShapeOrOpaque()};
  return Predicate(
      [a = *this](const Database& db, ObjectId id) { return !a.Eval(db, id); },
      std::move(shape));
}

PredicateShapePtr Predicate::ShapeOrOpaque() const {
  if (shape_ != nullptr) return shape_;
  return MakeShape(PredicateShape::Kind::kOpaque);
}

}  // namespace seed::query
