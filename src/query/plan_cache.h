// PlanCache: a process-global, shape-keyed cache of planning outcomes
// for the textual hot path.
//
// Every textual query re-parses, re-lowers, and re-runs the Selinger DP
// from scratch — fine for one shell, wasteful for a server pushing many
// reader sessions through the same handful of parameterized query
// shapes. The cache keys on the *shape* of a LogicalChain (database
// instance, classes, associations, roles, and the predicate tree with
// literals parameterized out — see Planner's shape-key builder) and
// stores a plan *skeleton*: per binder, the chosen access-path kind as
// its ordered index legs (index specs plus which extracted sargable
// conjunct feeds each leg). On a hit the planner re-binds the live
// literals into the skeleton and skips index selection, access-path
// costing, and the join-order DP entirely.
//
// Staleness is handled in two layers:
//  * Hard invalidation — an index referenced by the skeleton no longer
//    exists, or any captured statistics fingerprint (extent counts,
//    index entry counts) has drifted past `drift_ratio()` (default 2x,
//    smoothed so 0-vs-small never divides by zero). The entry is
//    dropped and the query planned fresh.
//  * Soft staleness — drift within the ratio. The skeleton is reused
//    as-is; estimate fields are recomputed from live statistics at
//    re-bind, so EXPLAIN output never shows stale numbers.
// Correctness never depends on either: the skeleton only fixes *which*
// access paths and join order to use, and every plan executes against
// live predicates and indexes (the differential suites pin cached ≡
// fresh ≡ brute force).
//
// Keys embed Database::instance_id(), so entries never alias across
// databases: version snapshots are fresh instances, and a superseded
// snapshot's entries simply age out of the LRU ring.
//
// Thread safety: the multiuser server calls Lookup/Insert/Invalidate
// from many sessions concurrently; one mutex guards the map and LRU
// list (entries are copied out under the lock).

#ifndef SEED_QUERY_PLAN_CACHE_H_
#define SEED_QUERY_PLAN_CACHE_H_

#include <cstdint>
#include <list>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/thread_annotations.h"
#include "index/attribute_index.h"

namespace seed::query {

/// The cached planning outcome for one chain shape. Pure skeleton: no
/// index pointers (specs are re-resolved at hit time), no literals
/// (re-bound from the live chain), no estimates (recomputed live).
struct CachedPlan {
  /// One access-path leg: probe/scan `spec` with the bounds of the
  /// binder's `sarg_ordinal`-th extracted sargable conjunct.
  struct Leg {
    index::IndexSpec spec;
    size_t sarg_ordinal = 0;
  };
  /// One binder's access path. No legs = full scan; one leg = single
  /// index probe/range; several = index intersection in stored order.
  struct Select {
    std::vector<Leg> legs;
  };
  std::vector<Select> selects;
  /// Statistics captured at planning time, in the planner's canonical
  /// order (per binder: extent count; per leg: index entry count; per
  /// hop: association extent count). The planner recomputes the live
  /// sequence on lookup and invalidates past the drift ratio.
  std::vector<std::uint64_t> fingerprints;
};

class PlanCache {
 public:
  /// The process-global instance every Planner consults.
  static PlanCache& Global();

  /// Copy of the entry for `key`, refreshing its LRU position. Does not
  /// count a hit: the caller still has to validate drift and re-resolve
  /// index specs before the entry is usable (NoteHit / Invalidate).
  std::optional<CachedPlan> Lookup(const std::string& key)
      SEED_EXCLUDES(mu_);

  /// Records a fresh planning outcome, evicting the LRU entry past
  /// capacity.
  void Insert(const std::string& key, CachedPlan plan) SEED_EXCLUDES(mu_);

  /// Drops a stale entry (drifted fingerprints or vanished index) and
  /// counts the invalidation.
  void Invalidate(const std::string& key) SEED_EXCLUDES(mu_);

  /// Metric taps; the planner calls exactly one of these per lookup.
  void NoteHit();
  void NoteMiss();

  /// Invalidation threshold: an entry dies when any live fingerprint
  /// `l` vs captured `c` has (l+1)/(c+1) or (c+1)/(l+1) > ratio.
  void set_drift_ratio(double ratio) SEED_EXCLUDES(mu_);
  double drift_ratio() const SEED_EXCLUDES(mu_);

  void Clear() SEED_EXCLUDES(mu_);
  size_t size() const SEED_EXCLUDES(mu_);

 private:
  static constexpr size_t kMaxEntries = 1024;

  struct Slot {
    CachedPlan plan;
    std::list<std::string>::iterator lru;
  };

  mutable common::Mutex mu_;
  std::unordered_map<std::string, Slot> entries_ SEED_GUARDED_BY(mu_);
  /// Most-recently-used at the front; Insert evicts from the back.
  std::list<std::string> lru_ SEED_GUARDED_BY(mu_);
  double drift_ratio_ SEED_GUARDED_BY(mu_) = 2.0;
};

}  // namespace seed::query

#endif  // SEED_QUERY_PLAN_CACHE_H_
