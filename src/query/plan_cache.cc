#include "query/plan_cache.h"

#include <utility>

#include "obs/metrics.h"

namespace seed::query {

namespace {

void CountEviction() {
  static obs::Counter* evictions = obs::MetricsRegistry::Global().GetCounter(
      "planner.cache.evictions.total");
  evictions->Increment();
}

}  // namespace

PlanCache& PlanCache::Global() {
  static PlanCache* cache = new PlanCache();
  return *cache;
}

std::optional<CachedPlan> PlanCache::Lookup(const std::string& key) {
  common::MutexLock lock(mu_);
  auto it = entries_.find(key);
  if (it == entries_.end()) return std::nullopt;
  lru_.splice(lru_.begin(), lru_, it->second.lru);
  return it->second.plan;
}

void PlanCache::Insert(const std::string& key, CachedPlan plan) {
  common::MutexLock lock(mu_);
  auto it = entries_.find(key);
  if (it != entries_.end()) {
    it->second.plan = std::move(plan);
    lru_.splice(lru_.begin(), lru_, it->second.lru);
    return;
  }
  if (entries_.size() >= kMaxEntries) {
    CountEviction();
    entries_.erase(lru_.back());
    lru_.pop_back();
  }
  lru_.push_front(key);
  entries_.emplace(key, Slot{std::move(plan), lru_.begin()});
}

void PlanCache::Invalidate(const std::string& key) {
  static obs::Counter* invalidations =
      obs::MetricsRegistry::Global().GetCounter(
          "planner.cache.invalidations.total");
  invalidations->Increment();
  common::MutexLock lock(mu_);
  auto it = entries_.find(key);
  if (it == entries_.end()) return;
  lru_.erase(it->second.lru);
  entries_.erase(it);
}

void PlanCache::NoteHit() {
  static obs::Counter* hits =
      obs::MetricsRegistry::Global().GetCounter("planner.cache.hits.total");
  hits->Increment();
}

void PlanCache::NoteMiss() {
  static obs::Counter* misses =
      obs::MetricsRegistry::Global().GetCounter("planner.cache.misses.total");
  misses->Increment();
}

void PlanCache::set_drift_ratio(double ratio) {
  common::MutexLock lock(mu_);
  drift_ratio_ = ratio;
}

double PlanCache::drift_ratio() const {
  common::MutexLock lock(mu_);
  return drift_ratio_;
}

void PlanCache::Clear() {
  common::MutexLock lock(mu_);
  entries_.clear();
  lru_.clear();
}

size_t PlanCache::size() const {
  common::MutexLock lock(mu_);
  return entries_.size();
}

}  // namespace seed::query
