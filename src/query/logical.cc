#include "query/logical.h"

namespace seed::query {

LogicalSelect LogicalSelect::Objects(ClassId cls, std::string binder,
                                     Predicate pred,
                                     bool include_specializations) {
  LogicalSelect out;
  out.extent = Extent::kObjects;
  out.cls = cls;
  out.binder = std::move(binder);
  out.pred = std::move(pred);
  out.include_specializations = include_specializations;
  return out;
}

LogicalSelect LogicalSelect::Relationships(
    AssociationId assoc, std::string binder,
    std::vector<RelCondition> conditions, bool include_specializations) {
  LogicalSelect out;
  out.extent = Extent::kRelationships;
  out.assoc = assoc;
  out.binder = std::move(binder);
  out.rel_conditions = std::move(conditions);
  out.include_specializations = include_specializations;
  return out;
}

Status LogicalChain::Validate() const {
  if (binders.empty()) {
    return Status::InvalidArgument("logical chain needs at least one binder");
  }
  if (binders.size() != hops.size() + 1) {
    return Status::InvalidArgument(
        "logical chain wants one binder per hop end (hops + 1)");
  }
  if (hops.size() > kMaxHops) {
    return Status::InvalidArgument("join chains support at most " +
                                   std::to_string(kMaxHops) + " hops");
  }
  for (size_t i = 0; i < binders.size(); ++i) {
    const LogicalSelect& b = binders[i];
    if (b.binder.empty()) {
      return Status::InvalidArgument("logical binder names must be non-empty");
    }
    for (size_t j = i + 1; j < binders.size(); ++j) {
      if (binders[j].binder == b.binder) {
        return Status::InvalidArgument("join binders must differ, got '" +
                                       b.binder + "' twice");
      }
    }
    if (b.extent == LogicalSelect::Extent::kRelationships &&
        binders.size() > 1) {
      return Status::InvalidArgument(
          "relationship extents cannot participate in join chains");
    }
    if (b.extent == LogicalSelect::Extent::kObjects && !b.cls.valid()) {
      return Status::InvalidArgument("logical object binder '" + b.binder +
                                     "' names no class");
    }
    if (b.extent == LogicalSelect::Extent::kRelationships &&
        !b.assoc.valid()) {
      return Status::InvalidArgument("logical relationship binder '" +
                                     b.binder + "' names no association");
    }
  }
  for (const LogicalJoinHop& hop : hops) {
    if (hop.left_role != 0 && hop.left_role != 1) {
      return Status::InvalidArgument("join role must be 0 or 1");
    }
    if (!hop.assoc.valid()) {
      return Status::InvalidArgument("logical hop names no association");
    }
  }
  return Status::OK();
}

}  // namespace seed::query
