#include "query/algebra.h"

#include <algorithm>
#include <cstddef>
#include <iterator>
#include <unordered_map>
#include <utility>

#include "exec/worker_pool.h"
#include "obs/metrics.h"

namespace seed::query {

int QueryRelation::AttrIndex(std::string_view name) const {
  for (size_t i = 0; i < attributes.size(); ++i) {
    if (attributes[i] == name) return static_cast<int>(i);
  }
  return -1;
}

namespace {

using Tuples = std::vector<std::vector<ObjectId>>;

/// Runs `emit_range(begin, end, sink)` over [0, n): sequentially into
/// `out` when the policy keeps this input sequential, otherwise as
/// morsels on the shared worker pool with one sink per morsel,
/// concatenated in morsel order afterwards — so the emission order is
/// exactly what the sequential pass would have produced, whatever the
/// scheduling. `emit_range` must only read shared state and write its
/// own sink.
template <typename EmitRange>
void PartitionedEmit(const exec::ExecPolicy& policy, std::size_t n,
                     Tuples* out, const EmitRange& emit_range) {
  if (!policy.ShouldPartition(n)) {
    emit_range(std::size_t{0}, n, out);
    return;
  }
  const std::size_t grain = policy.morsel_rows;
  std::vector<Tuples> slots((n + grain - 1) / grain);
  exec::WorkerPool::Global().ParallelFor(
      policy.threads, n, grain,
      [&emit_range, &slots, grain](std::size_t begin, std::size_t end) {
        emit_range(begin, end, &slots[begin / grain]);
      });
  std::size_t total = out->size();
  for (const Tuples& slot : slots) total += slot.size();
  out->reserve(total);
  for (Tuples& slot : slots) {
    for (auto& tuple : slot) out->push_back(std::move(tuple));
  }
}

/// Sorts tuples, with up to policy.threads lanes when the input clears
/// the partition threshold: equal-width chunks sorted as pool tasks,
/// then merged level by level (merges within a level are disjoint and
/// run concurrently). Duplicate tuples compare equal *and* are
/// identical, so the result array is bit-identical to a single
/// std::sort regardless of chunking.
void SortTuples(const exec::ExecPolicy& policy, Tuples* tuples) {
  const std::size_t n = tuples->size();
  const std::size_t chunks =
      policy.ShouldPartition(n)
          ? std::min(static_cast<std::size_t>(policy.threads),
                     std::max<std::size_t>(1, n / policy.morsel_rows))
          : 1;
  if (chunks < 2) {
    std::sort(tuples->begin(), tuples->end());
    return;
  }
  std::vector<std::size_t> bounds(chunks + 1);
  for (std::size_t c = 0; c <= chunks; ++c) bounds[c] = c * n / chunks;
  exec::WorkerPool& pool = exec::WorkerPool::Global();
  pool.EnsureWorkers(policy.threads - 1);
  {
    exec::TaskGroup group;
    for (std::size_t c = 1; c < chunks; ++c) {
      pool.Submit(&group, [tuples, &bounds, c] {
        std::sort(tuples->begin() + bounds[c],
                  tuples->begin() + bounds[c + 1]);
      });
    }
    std::sort(tuples->begin(), tuples->begin() + bounds[1]);
    pool.Await(&group);
  }
  for (std::size_t width = 1; width < chunks; width *= 2) {
    exec::TaskGroup group;
    for (std::size_t c = 0; c + width < chunks; c += 2 * width) {
      const std::size_t lo = bounds[c];
      const std::size_t mid = bounds[c + width];
      const std::size_t hi = bounds[std::min(c + 2 * width, chunks)];
      pool.Submit(&group, [tuples, lo, mid, hi] {
        std::inplace_merge(tuples->begin() + lo, tuples->begin() + mid,
                           tuples->begin() + hi);
      });
    }
    pool.Await(&group);
  }
}

}  // namespace

void Algebra::Dedup(QueryRelation* rel) const {
  SortTuples(policy_, &rel->tuples);
  rel->tuples.erase(std::unique(rel->tuples.begin(), rel->tuples.end()),
                    rel->tuples.end());
}

QueryRelation Algebra::ClassExtent(ClassId cls, std::string attribute,
                                   bool include_specializations) const {
  QueryRelation out;
  out.attributes = {std::move(attribute)};
  for (ObjectId id : db_->ObjectsOfClass(cls, include_specializations)) {
    out.tuples.push_back({id});
  }
  Dedup(&out);
  return out;
}

Result<QueryRelation> Algebra::Select(const QueryRelation& in,
                                      std::string_view attribute,
                                      const Predicate& p) const {
  int idx = in.AttrIndex(attribute);
  if (idx < 0) {
    return Status::InvalidArgument("no attribute '" + std::string(attribute) +
                                   "' in relation");
  }
  QueryRelation out;
  out.attributes = in.attributes;
  for (const auto& tuple : in.tuples) {
    if (p.Eval(*db_, tuple[idx])) out.tuples.push_back(tuple);
  }
  return out;
}

Result<QueryRelation> Algebra::Project(
    const QueryRelation& in, const std::vector<std::string>& keep) const {
  std::vector<int> indexes;
  for (const std::string& name : keep) {
    int idx = in.AttrIndex(name);
    if (idx < 0) {
      return Status::InvalidArgument("no attribute '" + name +
                                     "' in relation");
    }
    for (int seen : indexes) {
      if (seen == idx) {
        return Status::InvalidArgument("duplicate attribute '" + name +
                                       "' in projection");
      }
    }
    indexes.push_back(idx);
  }
  QueryRelation out;
  out.attributes = keep;
  for (const auto& tuple : in.tuples) {
    std::vector<ObjectId> projected;
    projected.reserve(indexes.size());
    for (int idx : indexes) projected.push_back(tuple[idx]);
    out.tuples.push_back(std::move(projected));
  }
  Dedup(&out);
  return out;
}

Result<QueryRelation> Algebra::CartesianProduct(const QueryRelation& a,
                                                const QueryRelation& b) const {
  for (const std::string& attr : b.attributes) {
    if (a.AttrIndex(attr) >= 0) {
      return Status::InvalidArgument("attribute '" + attr +
                                     "' appears on both sides");
    }
  }
  QueryRelation out;
  out.attributes = a.attributes;
  out.attributes.insert(out.attributes.end(), b.attributes.begin(),
                        b.attributes.end());
  for (const auto& ta : a.tuples) {
    for (const auto& tb : b.tuples) {
      std::vector<ObjectId> tuple = ta;
      tuple.insert(tuple.end(), tb.begin(), tb.end());
      out.tuples.push_back(std::move(tuple));
    }
  }
  return out;
}

namespace {

/// Tuples hashed by their join attribute.
using TupleIndex =
    std::unordered_map<ObjectId, std::vector<const std::vector<ObjectId>*>>;

TupleIndex HashTuples(const QueryRelation& rel, int attr) {
  TupleIndex index;
  index.reserve(rel.size());
  for (const auto& tuple : rel.tuples) index[tuple[attr]].push_back(&tuple);
  return index;
}

}  // namespace

Result<QueryRelation> Algebra::RelationshipJoin(const QueryRelation& a,
                                                std::string_view attr_a,
                                                AssociationId assoc,
                                                const QueryRelation& b,
                                                std::string_view attr_b) const {
  // Without planner statistics the one safe local decision is the hash
  // build side: index the smaller input, stream the larger.
  JoinOptions options;
  options.build_side = a.size() < b.size() ? JoinOptions::Side::kLeft
                                           : JoinOptions::Side::kRight;
  return RelationshipJoin(a, attr_a, assoc, b, attr_b, options);
}

Result<QueryRelation> Algebra::RelationshipJoin(
    const QueryRelation& a, std::string_view attr_a, AssociationId assoc,
    const QueryRelation& b, std::string_view attr_b,
    const JoinOptions& options) const {
  int ia = a.AttrIndex(attr_a);
  if (ia < 0) {
    return Status::InvalidArgument("no attribute '" + std::string(attr_a) +
                                   "' in left relation");
  }
  int ib = b.AttrIndex(attr_b);
  if (ib < 0) {
    return Status::InvalidArgument("no attribute '" + std::string(attr_b) +
                                   "' in right relation");
  }
  if (options.left_role != 0 && options.left_role != 1) {
    return Status::InvalidArgument("join role must be 0 or 1");
  }
  for (const std::string& attr : b.attributes) {
    if (a.AttrIndex(attr) >= 0) {
      return Status::InvalidArgument("attribute '" + attr +
                                     "' appears on both sides");
    }
  }
  QueryRelation out;
  out.attributes = a.attributes;
  out.attributes.insert(out.attributes.end(), b.attributes.begin(),
                        b.attributes.end());

  // An empty input joins with nothing; never touch the association.
  if (a.empty() || b.empty()) return out;

  const int left_role = options.left_role;
  const int right_role = 1 - left_role;
  auto concat = [](const std::vector<ObjectId>& ta,
                   const std::vector<ObjectId>& tb) {
    std::vector<ObjectId> tuple = ta;
    tuple.insert(tuple.end(), tb.begin(), tb.end());
    return tuple;
  };

  if (options.method == JoinOptions::Method::kIndexNestedLoop) {
    static obs::Counter* inl_joins =
        obs::MetricsRegistry::Global().GetCounter("algebra.join.inl.total");
    inl_joins->Increment();
    // Drive from one side, probe the per-object relationship map; the
    // association extent is never materialized. The driving side is
    // morsel-partitioned (probes only read the database and the built
    // tuple index).
    if (options.build_side == JoinOptions::Side::kLeft) {
      TupleIndex right_index = HashTuples(b, ib);
      PartitionedEmit(
          policy_, a.size(), &out.tuples,
          [this, &a, &right_index, &concat, ia, assoc, left_role, right_role](
              std::size_t begin, std::size_t end, Tuples* sink) {
            for (std::size_t t = begin; t < end; ++t) {
              const auto& ta = a.tuples[t];
              for (RelationshipId rid :
                   db_->RelationshipsOf(ta[ia], assoc, left_role)) {
                auto rel = db_->GetRelationship(rid);
                if (!rel.ok()) continue;
                auto matches = right_index.find((*rel)->ends[right_role]);
                if (matches == right_index.end()) continue;
                for (const auto* tb : matches->second) {
                  sink->push_back(concat(ta, *tb));
                }
              }
            }
          });
    } else {
      TupleIndex left_index = HashTuples(a, ia);
      PartitionedEmit(
          policy_, b.size(), &out.tuples,
          [this, &b, &left_index, &concat, ib, assoc, left_role, right_role](
              std::size_t begin, std::size_t end, Tuples* sink) {
            for (std::size_t t = begin; t < end; ++t) {
              const auto& tb = b.tuples[t];
              for (RelationshipId rid :
                   db_->RelationshipsOf(tb[ib], assoc, right_role)) {
                auto rel = db_->GetRelationship(rid);
                if (!rel.ok()) continue;
                auto matches = left_index.find((*rel)->ends[left_role]);
                if (matches == left_index.end()) continue;
                for (const auto* ta : matches->second) {
                  sink->push_back(concat(*ta, tb));
                }
              }
            }
          });
    }
    Dedup(&out);
    return out;
  }

  // Hash join: one pass over the association family builds the adjacency
  // keyed by the streamed side's end; the other side is hash-indexed.
  static obs::Counter* hash_joins =
      obs::MetricsRegistry::Global().GetCounter("algebra.join.hash.total");
  hash_joins->Increment();
  const bool build_left = options.build_side == JoinOptions::Side::kLeft;
  const int key_role = build_left ? right_role : left_role;
  const int val_role = 1 - key_role;
  using Adjacency = std::unordered_map<ObjectId, std::vector<ObjectId>>;
  Adjacency partners_of;
  const std::vector<RelationshipId> rels =
      db_->RelationshipsOfAssociation(assoc, true);
  auto build_range = [&](std::size_t begin, std::size_t end,
                         Adjacency* table) {
    for (std::size_t i = begin; i < end; ++i) {
      auto rel = db_->GetRelationship(rels[i]);
      if (!rel.ok()) continue;
      (*table)[(*rel)->ends[key_role]].push_back((*rel)->ends[val_role]);
    }
  };
  if (policy_.ShouldPartition(rels.size())) {
    // Partitioned build: one partial table per lane-sized chunk, merged
    // in chunk order — each key's partner list comes out in adjacency
    // order, exactly as the serial single-pass build produces it.
    const std::size_t grain =
        (rels.size() + static_cast<std::size_t>(policy_.threads) - 1) /
        static_cast<std::size_t>(policy_.threads);
    std::vector<Adjacency> parts((rels.size() + grain - 1) / grain);
    exec::WorkerPool::Global().ParallelFor(
        policy_.threads, rels.size(), grain,
        [&build_range, &parts, grain](std::size_t begin, std::size_t end) {
          build_range(begin, end, &parts[begin / grain]);
        });
    std::size_t keys = 0;
    for (const Adjacency& part : parts) keys += part.size();
    partners_of.reserve(keys);
    for (Adjacency& part : parts) {
      for (auto& [key, vals] : part) {
        auto& dst = partners_of[key];
        if (dst.empty()) {
          dst = std::move(vals);
        } else {
          dst.insert(dst.end(), vals.begin(), vals.end());
        }
      }
    }
  } else {
    build_range(0, rels.size(), &partners_of);
  }
  if (build_left) {
    TupleIndex left_index = HashTuples(a, ia);
    PartitionedEmit(policy_, b.size(), &out.tuples,
                    [&b, &partners_of, &left_index, &concat, ib](
                        std::size_t begin, std::size_t end, Tuples* sink) {
                      for (std::size_t t = begin; t < end; ++t) {
                        const auto& tb = b.tuples[t];
                        auto partners = partners_of.find(tb[ib]);
                        if (partners == partners_of.end()) continue;
                        for (ObjectId partner : partners->second) {
                          auto matches = left_index.find(partner);
                          if (matches == left_index.end()) continue;
                          for (const auto* ta : matches->second) {
                            sink->push_back(concat(*ta, tb));
                          }
                        }
                      }
                    });
  } else {
    TupleIndex right_index = HashTuples(b, ib);
    PartitionedEmit(policy_, a.size(), &out.tuples,
                    [&a, &partners_of, &right_index, &concat, ia](
                        std::size_t begin, std::size_t end, Tuples* sink) {
                      for (std::size_t t = begin; t < end; ++t) {
                        const auto& ta = a.tuples[t];
                        auto partners = partners_of.find(ta[ia]);
                        if (partners == partners_of.end()) continue;
                        for (ObjectId partner : partners->second) {
                          auto matches = right_index.find(partner);
                          if (matches == right_index.end()) continue;
                          for (const auto* tb : matches->second) {
                            sink->push_back(concat(ta, *tb));
                          }
                        }
                      }
                    });
  }
  Dedup(&out);
  return out;
}

Result<QueryRelation> Algebra::TupleJoin(const QueryRelation& a,
                                         const QueryRelation& b,
                                         std::string_view shared) const {
  int ia = a.AttrIndex(shared);
  int ib = b.AttrIndex(shared);
  if (ia < 0 || ib < 0) {
    return Status::InvalidArgument("shared attribute '" + std::string(shared) +
                                   "' must appear on both sides");
  }
  for (size_t j = 0; j < b.attributes.size(); ++j) {
    if (static_cast<int>(j) == ib) continue;
    if (a.AttrIndex(b.attributes[j]) >= 0) {
      return Status::InvalidArgument("attribute '" + b.attributes[j] +
                                     "' appears on both sides");
    }
  }
  QueryRelation out;
  out.attributes = a.attributes;
  for (size_t j = 0; j < b.attributes.size(); ++j) {
    if (static_cast<int>(j) != ib) out.attributes.push_back(b.attributes[j]);
  }
  if (a.empty() || b.empty()) return out;

  static obs::Counter* tuple_joins =
      obs::MetricsRegistry::Global().GetCounter("algebra.join.tuple.total");
  tuple_joins->Increment();

  // Hash the smaller side by its shared column, stream the other.
  const bool build_left = a.size() <= b.size();
  const QueryRelation& build = build_left ? a : b;
  const QueryRelation& probe = build_left ? b : a;
  const int build_attr = build_left ? ia : ib;
  const int probe_attr = build_left ? ib : ia;
  TupleIndex built = HashTuples(build, build_attr);
  auto concat = [&](const std::vector<ObjectId>& ta,
                    const std::vector<ObjectId>& tb) {
    std::vector<ObjectId> tuple = ta;
    tuple.reserve(out.attributes.size());
    for (size_t j = 0; j < tb.size(); ++j) {
      if (static_cast<int>(j) != ib) tuple.push_back(tb[j]);
    }
    return tuple;
  };
  // The probe side is morsel-partitioned; `built` is read-only here.
  PartitionedEmit(policy_, probe.size(), &out.tuples,
                  [&probe, &built, &concat, probe_attr, build_left](
                      std::size_t begin, std::size_t end, Tuples* sink) {
                    for (std::size_t t = begin; t < end; ++t) {
                      const auto& tp = probe.tuples[t];
                      auto matches = built.find(tp[probe_attr]);
                      if (matches == built.end()) continue;
                      for (const auto* tb : matches->second) {
                        sink->push_back(build_left ? concat(*tb, tp)
                                                   : concat(tp, *tb));
                      }
                    }
                  });
  Dedup(&out);
  return out;
}

Result<QueryRelation> Algebra::Union(const QueryRelation& a,
                                     const QueryRelation& b) const {
  if (a.attributes != b.attributes) {
    return Status::InvalidArgument(
        "union requires identical attribute lists");
  }
  QueryRelation out;
  out.attributes = a.attributes;
  out.tuples = a.tuples;
  out.tuples.insert(out.tuples.end(), b.tuples.begin(), b.tuples.end());
  Dedup(&out);
  return out;
}

namespace {

/// Strictly increasing == sorted with no duplicates — what every
/// operator emits. Hand-built relations may violate it; normalize those
/// into `storage` so the linear merges below stay correct.
const Tuples& NormalizedTuples(const Tuples& tuples, Tuples* storage) {
  bool strictly_increasing = true;
  for (size_t i = 1; i < tuples.size(); ++i) {
    if (!(tuples[i - 1] < tuples[i])) {
      strictly_increasing = false;
      break;
    }
  }
  if (strictly_increasing) return tuples;
  *storage = tuples;
  std::sort(storage->begin(), storage->end());
  storage->erase(std::unique(storage->begin(), storage->end()),
                 storage->end());
  return *storage;
}

}  // namespace

Result<QueryRelation> Algebra::Difference(const QueryRelation& a,
                                          const QueryRelation& b) const {
  if (a.attributes != b.attributes) {
    return Status::InvalidArgument(
        "difference requires identical attribute lists");
  }
  // Operator outputs are sorted and deduplicated by construction, so a
  // linear merge replaces the old per-tuple set probes (O(n log n)
  // vector compares); the O(n) normalization check only ever copies for
  // hand-built inputs.
  Tuples a_storage, b_storage;
  const Tuples& a_tuples = NormalizedTuples(a.tuples, &a_storage);
  const Tuples& b_tuples = NormalizedTuples(b.tuples, &b_storage);
  QueryRelation out;
  out.attributes = a.attributes;
  std::set_difference(a_tuples.begin(), a_tuples.end(), b_tuples.begin(),
                      b_tuples.end(), std::back_inserter(out.tuples));
  return out;
}

Result<QueryRelation> Algebra::Intersect(const QueryRelation& a,
                                         const QueryRelation& b) const {
  if (a.attributes != b.attributes) {
    return Status::InvalidArgument(
        "intersection requires identical attribute lists");
  }
  Tuples a_storage, b_storage;
  const Tuples& a_tuples = NormalizedTuples(a.tuples, &a_storage);
  const Tuples& b_tuples = NormalizedTuples(b.tuples, &b_storage);
  QueryRelation out;
  out.attributes = a.attributes;
  std::set_intersection(a_tuples.begin(), a_tuples.end(), b_tuples.begin(),
                        b_tuples.end(), std::back_inserter(out.tuples));
  return out;
}

}  // namespace seed::query
