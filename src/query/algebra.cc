#include "query/algebra.h"

#include <algorithm>
#include <set>
#include <unordered_set>

namespace seed::query {

int QueryRelation::AttrIndex(std::string_view name) const {
  for (size_t i = 0; i < attributes.size(); ++i) {
    if (attributes[i] == name) return static_cast<int>(i);
  }
  return -1;
}

void Algebra::Dedup(QueryRelation* rel) {
  std::sort(rel->tuples.begin(), rel->tuples.end());
  rel->tuples.erase(std::unique(rel->tuples.begin(), rel->tuples.end()),
                    rel->tuples.end());
}

QueryRelation Algebra::ClassExtent(ClassId cls, std::string attribute,
                                   bool include_specializations) const {
  QueryRelation out;
  out.attributes = {std::move(attribute)};
  for (ObjectId id : db_->ObjectsOfClass(cls, include_specializations)) {
    out.tuples.push_back({id});
  }
  Dedup(&out);
  return out;
}

Result<QueryRelation> Algebra::Select(const QueryRelation& in,
                                      std::string_view attribute,
                                      const Predicate& p) const {
  int idx = in.AttrIndex(attribute);
  if (idx < 0) {
    return Status::InvalidArgument("no attribute '" + std::string(attribute) +
                                   "' in relation");
  }
  QueryRelation out;
  out.attributes = in.attributes;
  for (const auto& tuple : in.tuples) {
    if (p.Eval(*db_, tuple[idx])) out.tuples.push_back(tuple);
  }
  return out;
}

Result<QueryRelation> Algebra::Project(
    const QueryRelation& in, const std::vector<std::string>& keep) const {
  std::vector<int> indexes;
  for (const std::string& name : keep) {
    int idx = in.AttrIndex(name);
    if (idx < 0) {
      return Status::InvalidArgument("no attribute '" + name +
                                     "' in relation");
    }
    indexes.push_back(idx);
  }
  QueryRelation out;
  out.attributes = keep;
  for (const auto& tuple : in.tuples) {
    std::vector<ObjectId> projected;
    projected.reserve(indexes.size());
    for (int idx : indexes) projected.push_back(tuple[idx]);
    out.tuples.push_back(std::move(projected));
  }
  Dedup(&out);
  return out;
}

Result<QueryRelation> Algebra::CartesianProduct(const QueryRelation& a,
                                                const QueryRelation& b) const {
  for (const std::string& attr : b.attributes) {
    if (a.AttrIndex(attr) >= 0) {
      return Status::InvalidArgument("attribute '" + attr +
                                     "' appears on both sides");
    }
  }
  QueryRelation out;
  out.attributes = a.attributes;
  out.attributes.insert(out.attributes.end(), b.attributes.begin(),
                        b.attributes.end());
  for (const auto& ta : a.tuples) {
    for (const auto& tb : b.tuples) {
      std::vector<ObjectId> tuple = ta;
      tuple.insert(tuple.end(), tb.begin(), tb.end());
      out.tuples.push_back(std::move(tuple));
    }
  }
  return out;
}

Result<QueryRelation> Algebra::RelationshipJoin(const QueryRelation& a,
                                                std::string_view attr_a,
                                                AssociationId assoc,
                                                const QueryRelation& b,
                                                std::string_view attr_b) const {
  int ia = a.AttrIndex(attr_a);
  if (ia < 0) {
    return Status::InvalidArgument("no attribute '" + std::string(attr_a) +
                                   "' in left relation");
  }
  int ib = b.AttrIndex(attr_b);
  if (ib < 0) {
    return Status::InvalidArgument("no attribute '" + std::string(attr_b) +
                                   "' in right relation");
  }
  for (const std::string& attr : b.attributes) {
    if (a.AttrIndex(attr) >= 0) {
      return Status::InvalidArgument("attribute '" + attr +
                                     "' appears on both sides");
    }
  }
  // Existing relationships of the family: role0 end -> role1 ends.
  std::unordered_map<ObjectId, std::vector<ObjectId>> right_of;
  for (RelationshipId rid : db_->RelationshipsOfAssociation(assoc, true)) {
    auto rel = db_->GetRelationship(rid);
    if (!rel.ok()) continue;
    right_of[(*rel)->ends[0]].push_back((*rel)->ends[1]);
  }

  // Hash the right side by the join attribute.
  std::unordered_map<ObjectId, std::vector<const std::vector<ObjectId>*>>
      right_index;
  for (const auto& tb : b.tuples) right_index[tb[ib]].push_back(&tb);

  QueryRelation out;
  out.attributes = a.attributes;
  out.attributes.insert(out.attributes.end(), b.attributes.begin(),
                        b.attributes.end());
  for (const auto& ta : a.tuples) {
    auto partners = right_of.find(ta[ia]);
    if (partners == right_of.end()) continue;
    for (ObjectId partner : partners->second) {
      auto matches = right_index.find(partner);
      if (matches == right_index.end()) continue;
      for (const auto* tb : matches->second) {
        std::vector<ObjectId> tuple = ta;
        tuple.insert(tuple.end(), tb->begin(), tb->end());
        out.tuples.push_back(std::move(tuple));
      }
    }
  }
  Dedup(&out);
  return out;
}

Result<QueryRelation> Algebra::Union(const QueryRelation& a,
                                     const QueryRelation& b) const {
  if (a.attributes != b.attributes) {
    return Status::InvalidArgument(
        "union requires identical attribute lists");
  }
  QueryRelation out;
  out.attributes = a.attributes;
  out.tuples = a.tuples;
  out.tuples.insert(out.tuples.end(), b.tuples.begin(), b.tuples.end());
  Dedup(&out);
  return out;
}

Result<QueryRelation> Algebra::Difference(const QueryRelation& a,
                                          const QueryRelation& b) const {
  if (a.attributes != b.attributes) {
    return Status::InvalidArgument(
        "difference requires identical attribute lists");
  }
  std::set<std::vector<ObjectId>> exclude(b.tuples.begin(), b.tuples.end());
  QueryRelation out;
  out.attributes = a.attributes;
  for (const auto& tuple : a.tuples) {
    if (exclude.count(tuple) == 0) out.tuples.push_back(tuple);
  }
  Dedup(&out);
  return out;
}

Result<QueryRelation> Algebra::Intersect(const QueryRelation& a,
                                         const QueryRelation& b) const {
  if (a.attributes != b.attributes) {
    return Status::InvalidArgument(
        "intersection requires identical attribute lists");
  }
  std::set<std::vector<ObjectId>> keep(b.tuples.begin(), b.tuples.end());
  QueryRelation out;
  out.attributes = a.attributes;
  for (const auto& tuple : a.tuples) {
    if (keep.count(tuple) != 0) out.tuples.push_back(tuple);
  }
  Dedup(&out);
  return out;
}

}  // namespace seed::query
