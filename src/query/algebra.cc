#include "query/algebra.h"

#include <algorithm>
#include <iterator>
#include <unordered_map>

#include "obs/metrics.h"

namespace seed::query {

int QueryRelation::AttrIndex(std::string_view name) const {
  for (size_t i = 0; i < attributes.size(); ++i) {
    if (attributes[i] == name) return static_cast<int>(i);
  }
  return -1;
}

void Algebra::Dedup(QueryRelation* rel) {
  std::sort(rel->tuples.begin(), rel->tuples.end());
  rel->tuples.erase(std::unique(rel->tuples.begin(), rel->tuples.end()),
                    rel->tuples.end());
}

QueryRelation Algebra::ClassExtent(ClassId cls, std::string attribute,
                                   bool include_specializations) const {
  QueryRelation out;
  out.attributes = {std::move(attribute)};
  for (ObjectId id : db_->ObjectsOfClass(cls, include_specializations)) {
    out.tuples.push_back({id});
  }
  Dedup(&out);
  return out;
}

Result<QueryRelation> Algebra::Select(const QueryRelation& in,
                                      std::string_view attribute,
                                      const Predicate& p) const {
  int idx = in.AttrIndex(attribute);
  if (idx < 0) {
    return Status::InvalidArgument("no attribute '" + std::string(attribute) +
                                   "' in relation");
  }
  QueryRelation out;
  out.attributes = in.attributes;
  for (const auto& tuple : in.tuples) {
    if (p.Eval(*db_, tuple[idx])) out.tuples.push_back(tuple);
  }
  return out;
}

Result<QueryRelation> Algebra::Project(
    const QueryRelation& in, const std::vector<std::string>& keep) const {
  std::vector<int> indexes;
  for (const std::string& name : keep) {
    int idx = in.AttrIndex(name);
    if (idx < 0) {
      return Status::InvalidArgument("no attribute '" + name +
                                     "' in relation");
    }
    for (int seen : indexes) {
      if (seen == idx) {
        return Status::InvalidArgument("duplicate attribute '" + name +
                                       "' in projection");
      }
    }
    indexes.push_back(idx);
  }
  QueryRelation out;
  out.attributes = keep;
  for (const auto& tuple : in.tuples) {
    std::vector<ObjectId> projected;
    projected.reserve(indexes.size());
    for (int idx : indexes) projected.push_back(tuple[idx]);
    out.tuples.push_back(std::move(projected));
  }
  Dedup(&out);
  return out;
}

Result<QueryRelation> Algebra::CartesianProduct(const QueryRelation& a,
                                                const QueryRelation& b) const {
  for (const std::string& attr : b.attributes) {
    if (a.AttrIndex(attr) >= 0) {
      return Status::InvalidArgument("attribute '" + attr +
                                     "' appears on both sides");
    }
  }
  QueryRelation out;
  out.attributes = a.attributes;
  out.attributes.insert(out.attributes.end(), b.attributes.begin(),
                        b.attributes.end());
  for (const auto& ta : a.tuples) {
    for (const auto& tb : b.tuples) {
      std::vector<ObjectId> tuple = ta;
      tuple.insert(tuple.end(), tb.begin(), tb.end());
      out.tuples.push_back(std::move(tuple));
    }
  }
  return out;
}

namespace {

/// Tuples hashed by their join attribute.
using TupleIndex =
    std::unordered_map<ObjectId, std::vector<const std::vector<ObjectId>*>>;

TupleIndex HashTuples(const QueryRelation& rel, int attr) {
  TupleIndex index;
  index.reserve(rel.size());
  for (const auto& tuple : rel.tuples) index[tuple[attr]].push_back(&tuple);
  return index;
}

}  // namespace

Result<QueryRelation> Algebra::RelationshipJoin(const QueryRelation& a,
                                                std::string_view attr_a,
                                                AssociationId assoc,
                                                const QueryRelation& b,
                                                std::string_view attr_b) const {
  // Without planner statistics the one safe local decision is the hash
  // build side: index the smaller input, stream the larger.
  JoinOptions options;
  options.build_side = a.size() < b.size() ? JoinOptions::Side::kLeft
                                           : JoinOptions::Side::kRight;
  return RelationshipJoin(a, attr_a, assoc, b, attr_b, options);
}

Result<QueryRelation> Algebra::RelationshipJoin(
    const QueryRelation& a, std::string_view attr_a, AssociationId assoc,
    const QueryRelation& b, std::string_view attr_b,
    const JoinOptions& options) const {
  int ia = a.AttrIndex(attr_a);
  if (ia < 0) {
    return Status::InvalidArgument("no attribute '" + std::string(attr_a) +
                                   "' in left relation");
  }
  int ib = b.AttrIndex(attr_b);
  if (ib < 0) {
    return Status::InvalidArgument("no attribute '" + std::string(attr_b) +
                                   "' in right relation");
  }
  if (options.left_role != 0 && options.left_role != 1) {
    return Status::InvalidArgument("join role must be 0 or 1");
  }
  for (const std::string& attr : b.attributes) {
    if (a.AttrIndex(attr) >= 0) {
      return Status::InvalidArgument("attribute '" + attr +
                                     "' appears on both sides");
    }
  }
  QueryRelation out;
  out.attributes = a.attributes;
  out.attributes.insert(out.attributes.end(), b.attributes.begin(),
                        b.attributes.end());

  // An empty input joins with nothing; never touch the association.
  if (a.empty() || b.empty()) return out;

  const int left_role = options.left_role;
  const int right_role = 1 - left_role;
  auto emit = [&](const std::vector<ObjectId>& ta,
                  const std::vector<ObjectId>& tb) {
    std::vector<ObjectId> tuple = ta;
    tuple.insert(tuple.end(), tb.begin(), tb.end());
    out.tuples.push_back(std::move(tuple));
  };

  if (options.method == JoinOptions::Method::kIndexNestedLoop) {
    static obs::Counter* inl_joins =
        obs::MetricsRegistry::Global().GetCounter("algebra.join.inl.total");
    inl_joins->Increment();
    // Drive from one side, probe the per-object relationship map; the
    // association extent is never materialized.
    if (options.build_side == JoinOptions::Side::kLeft) {
      TupleIndex right_index = HashTuples(b, ib);
      for (const auto& ta : a.tuples) {
        for (RelationshipId rid :
             db_->RelationshipsOf(ta[ia], assoc, left_role)) {
          auto rel = db_->GetRelationship(rid);
          if (!rel.ok()) continue;
          auto matches = right_index.find((*rel)->ends[right_role]);
          if (matches == right_index.end()) continue;
          for (const auto* tb : matches->second) emit(ta, *tb);
        }
      }
    } else {
      TupleIndex left_index = HashTuples(a, ia);
      for (const auto& tb : b.tuples) {
        for (RelationshipId rid :
             db_->RelationshipsOf(tb[ib], assoc, right_role)) {
          auto rel = db_->GetRelationship(rid);
          if (!rel.ok()) continue;
          auto matches = left_index.find((*rel)->ends[left_role]);
          if (matches == left_index.end()) continue;
          for (const auto* ta : matches->second) emit(*ta, tb);
        }
      }
    }
    Dedup(&out);
    return out;
  }

  // Hash join: one pass over the association family builds the adjacency
  // keyed by the streamed side's end; the other side is hash-indexed.
  static obs::Counter* hash_joins =
      obs::MetricsRegistry::Global().GetCounter("algebra.join.hash.total");
  hash_joins->Increment();
  const bool build_left = options.build_side == JoinOptions::Side::kLeft;
  std::unordered_map<ObjectId, std::vector<ObjectId>> partners_of;
  for (RelationshipId rid : db_->RelationshipsOfAssociation(assoc, true)) {
    auto rel = db_->GetRelationship(rid);
    if (!rel.ok()) continue;
    if (build_left) {
      partners_of[(*rel)->ends[right_role]].push_back(
          (*rel)->ends[left_role]);
    } else {
      partners_of[(*rel)->ends[left_role]].push_back(
          (*rel)->ends[right_role]);
    }
  }
  if (build_left) {
    TupleIndex left_index = HashTuples(a, ia);
    for (const auto& tb : b.tuples) {
      auto partners = partners_of.find(tb[ib]);
      if (partners == partners_of.end()) continue;
      for (ObjectId partner : partners->second) {
        auto matches = left_index.find(partner);
        if (matches == left_index.end()) continue;
        for (const auto* ta : matches->second) emit(*ta, tb);
      }
    }
  } else {
    TupleIndex right_index = HashTuples(b, ib);
    for (const auto& ta : a.tuples) {
      auto partners = partners_of.find(ta[ia]);
      if (partners == partners_of.end()) continue;
      for (ObjectId partner : partners->second) {
        auto matches = right_index.find(partner);
        if (matches == right_index.end()) continue;
        for (const auto* tb : matches->second) emit(ta, *tb);
      }
    }
  }
  Dedup(&out);
  return out;
}

Result<QueryRelation> Algebra::TupleJoin(const QueryRelation& a,
                                         const QueryRelation& b,
                                         std::string_view shared) const {
  int ia = a.AttrIndex(shared);
  int ib = b.AttrIndex(shared);
  if (ia < 0 || ib < 0) {
    return Status::InvalidArgument("shared attribute '" + std::string(shared) +
                                   "' must appear on both sides");
  }
  for (size_t j = 0; j < b.attributes.size(); ++j) {
    if (static_cast<int>(j) == ib) continue;
    if (a.AttrIndex(b.attributes[j]) >= 0) {
      return Status::InvalidArgument("attribute '" + b.attributes[j] +
                                     "' appears on both sides");
    }
  }
  QueryRelation out;
  out.attributes = a.attributes;
  for (size_t j = 0; j < b.attributes.size(); ++j) {
    if (static_cast<int>(j) != ib) out.attributes.push_back(b.attributes[j]);
  }
  if (a.empty() || b.empty()) return out;

  static obs::Counter* tuple_joins =
      obs::MetricsRegistry::Global().GetCounter("algebra.join.tuple.total");
  tuple_joins->Increment();

  // Hash the smaller side by its shared column, stream the other.
  const bool build_left = a.size() <= b.size();
  const QueryRelation& build = build_left ? a : b;
  const QueryRelation& probe = build_left ? b : a;
  const int build_attr = build_left ? ia : ib;
  const int probe_attr = build_left ? ib : ia;
  TupleIndex built = HashTuples(build, build_attr);
  auto emit = [&](const std::vector<ObjectId>& ta,
                  const std::vector<ObjectId>& tb) {
    std::vector<ObjectId> tuple = ta;
    tuple.reserve(out.attributes.size());
    for (size_t j = 0; j < tb.size(); ++j) {
      if (static_cast<int>(j) != ib) tuple.push_back(tb[j]);
    }
    out.tuples.push_back(std::move(tuple));
  };
  for (const auto& tp : probe.tuples) {
    auto matches = built.find(tp[probe_attr]);
    if (matches == built.end()) continue;
    for (const auto* tb : matches->second) {
      if (build_left) {
        emit(*tb, tp);
      } else {
        emit(tp, *tb);
      }
    }
  }
  Dedup(&out);
  return out;
}

Result<QueryRelation> Algebra::Union(const QueryRelation& a,
                                     const QueryRelation& b) const {
  if (a.attributes != b.attributes) {
    return Status::InvalidArgument(
        "union requires identical attribute lists");
  }
  QueryRelation out;
  out.attributes = a.attributes;
  out.tuples = a.tuples;
  out.tuples.insert(out.tuples.end(), b.tuples.begin(), b.tuples.end());
  Dedup(&out);
  return out;
}

namespace {

using Tuples = std::vector<std::vector<ObjectId>>;

/// Strictly increasing == sorted with no duplicates — what every
/// operator emits. Hand-built relations may violate it; normalize those
/// into `storage` so the linear merges below stay correct.
const Tuples& NormalizedTuples(const Tuples& tuples, Tuples* storage) {
  bool strictly_increasing = true;
  for (size_t i = 1; i < tuples.size(); ++i) {
    if (!(tuples[i - 1] < tuples[i])) {
      strictly_increasing = false;
      break;
    }
  }
  if (strictly_increasing) return tuples;
  *storage = tuples;
  std::sort(storage->begin(), storage->end());
  storage->erase(std::unique(storage->begin(), storage->end()),
                 storage->end());
  return *storage;
}

}  // namespace

Result<QueryRelation> Algebra::Difference(const QueryRelation& a,
                                          const QueryRelation& b) const {
  if (a.attributes != b.attributes) {
    return Status::InvalidArgument(
        "difference requires identical attribute lists");
  }
  // Operator outputs are sorted and deduplicated by construction, so a
  // linear merge replaces the old per-tuple set probes (O(n log n)
  // vector compares); the O(n) normalization check only ever copies for
  // hand-built inputs.
  Tuples a_storage, b_storage;
  const Tuples& a_tuples = NormalizedTuples(a.tuples, &a_storage);
  const Tuples& b_tuples = NormalizedTuples(b.tuples, &b_storage);
  QueryRelation out;
  out.attributes = a.attributes;
  std::set_difference(a_tuples.begin(), a_tuples.end(), b_tuples.begin(),
                      b_tuples.end(), std::back_inserter(out.tuples));
  return out;
}

Result<QueryRelation> Algebra::Intersect(const QueryRelation& a,
                                         const QueryRelation& b) const {
  if (a.attributes != b.attributes) {
    return Status::InvalidArgument(
        "intersection requires identical attribute lists");
  }
  Tuples a_storage, b_storage;
  const Tuples& a_tuples = NormalizedTuples(a.tuples, &a_storage);
  const Tuples& b_tuples = NormalizedTuples(b.tuples, &b_storage);
  QueryRelation out;
  out.attributes = a.attributes;
  std::set_intersection(a_tuples.begin(), a_tuples.end(), b_tuples.begin(),
                        b_tuples.end(), std::back_inserter(out.tuples));
  return out;
}

}  // namespace seed::query
