#include "exec/exec_policy.h"

#include <atomic>
#include <cstdlib>
#include <thread>

namespace seed::exec {

namespace {

constexpr int kMaxThreads = 256;

int Clamp(long v) {
  if (v < 1) return 1;
  if (v > kMaxThreads) return kMaxThreads;
  return static_cast<int>(v);
}

int ResolveFromEnvironment() {
  if (const char* env = std::getenv("SEED_EXEC_THREADS")) {
    char* end = nullptr;
    long v = std::strtol(env, &end, 10);
    if (end != env && v >= 1) return Clamp(v);
  }
  unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : Clamp(static_cast<long>(hw));
}

/// 0 = not yet resolved.
std::atomic<int> g_default_threads{0};

}  // namespace

int DefaultThreads() {
  int v = g_default_threads.load(std::memory_order_relaxed);
  if (v == 0) {
    int resolved = ResolveFromEnvironment();
    // First resolver wins; a concurrent SetDefaultThreads wins over us.
    g_default_threads.compare_exchange_strong(v, resolved,
                                              std::memory_order_relaxed);
    v = g_default_threads.load(std::memory_order_relaxed);
  }
  return v;
}

void SetDefaultThreads(int threads) {
  g_default_threads.store(Clamp(threads), std::memory_order_relaxed);
}

ExecPolicy ExecPolicy::Default() {
  ExecPolicy policy;
  policy.threads = DefaultThreads();
  return policy;
}

}  // namespace seed::exec
