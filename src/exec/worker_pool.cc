#include "exec/worker_pool.h"

#include <algorithm>

namespace seed::exec {

WorkerPool& WorkerPool::Global() {
  static WorkerPool pool;
  return pool;
}

WorkerPool::~WorkerPool() {
  // Swap the threads out under the lock so the join below touches no
  // guarded state; workers observe stop_ and drain on their own.
  std::vector<std::thread> workers;
  {
    common::MutexLock lk(mu_);
    stop_ = true;
    workers.swap(workers_);
  }
  cv_.NotifyAll();
  for (std::thread& worker : workers) worker.join();
}

void WorkerPool::EnsureWorkers(int n) {
  common::MutexLock lk(mu_);
  while (static_cast<int>(workers_.size()) < n) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

int WorkerPool::workers() const {
  common::MutexLock lk(mu_);
  return static_cast<int>(workers_.size());
}

void WorkerPool::Submit(TaskGroup* group, std::function<void()> fn) {
  group->pending_.fetch_add(1, std::memory_order_relaxed);
  {
    common::MutexLock lk(mu_);
    queue_.push_back({group, std::move(fn)});
  }
  cv_.NotifyOne();
}

void WorkerPool::FinishTask(TaskGroup* group) {
  // Release so the Await-er's acquire load observes everything the task
  // wrote. After the decrement `group` may already be destroyed (the
  // Await-er saw 0 and returned) — only pool members are touched below.
  if (group->pending_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    common::MutexLock lk(mu_);
    cv_.NotifyAll();
  }
}

void WorkerPool::RunOneQueued() {
  Task task = std::move(queue_.front());
  queue_.pop_front();
  mu_.Unlock();
  task.fn();
  FinishTask(task.group);
  mu_.Lock();
}

void WorkerPool::WorkerLoop() {
  common::MutexLock lk(mu_);
  for (;;) {
    while (!stop_ && queue_.empty()) cv_.Wait(mu_);
    if (queue_.empty()) {
      if (stop_) return;
      continue;
    }
    RunOneQueued();
  }
}

void WorkerPool::Await(TaskGroup* group) {
  common::MutexLock lk(mu_);
  for (;;) {
    if (group->pending_.load(std::memory_order_acquire) == 0) return;
    if (!queue_.empty()) {
      // Help: run queued work (any group's) instead of sleeping — this
      // is what makes nested Submit/Await deadlock-free.
      RunOneQueued();
      continue;
    }
    // Woken by Submit (new work to help with) or by the last FinishTask
    // of some group; the loop re-checks both conditions either way.
    cv_.Wait(mu_);
  }
}

void WorkerPool::ParallelFor(
    int lanes, std::size_t n, std::size_t grain,
    const std::function<void(std::size_t, std::size_t)>& fn) {
  if (n == 0) return;
  if (grain == 0) grain = 1;
  if (lanes < 2 || n <= grain) {
    fn(0, n);
    return;
  }
  // Helpers beyond the morsel count would never claim one.
  const std::size_t morsels = (n + grain - 1) / grain;
  const int helpers = static_cast<int>(std::min<std::size_t>(
      static_cast<std::size_t>(lanes - 1), morsels - 1));
  EnsureWorkers(helpers);

  std::atomic<std::size_t> cursor{0};
  auto drain = [&cursor, &fn, n, grain] {
    for (;;) {
      std::size_t begin = cursor.fetch_add(grain, std::memory_order_relaxed);
      if (begin >= n) return;
      fn(begin, std::min(begin + grain, n));
    }
  };
  TaskGroup group;
  for (int i = 0; i < helpers; ++i) Submit(&group, drain);
  drain();
  Await(&group);
}

}  // namespace seed::exec
