// A fixed worker pool for morsel-driven query execution.
//
// Design (a la HyPer's morsel-driven parallelism): operators split large
// inputs into morsels — contiguous spans of rows — that workers claim
// from a shared cursor, so load balances dynamically without any
// per-morsel queueing; independent plan subtrees run as coarse tasks on
// the same pool. The submitting thread is always lane 0: Await() *helps*
// (it executes queued tasks while it waits), so nested parallelism —
// a subtree task whose joins themselves partition into morsels — can
// never deadlock the pool, whatever its size.
//
// Threading contract:
//  * tasks must not block on anything but this pool (they may Submit and
//    Await recursively);
//  * everything a task wrote is visible to the thread that Await()ed its
//    group (release/acquire on the group's pending count);
//  * the pool is grow-only: EnsureWorkers never shrinks, and worker
//    threads live until process exit. Parallelism *degree* is bounded by
//    the submitter (ExecPolicy::threads limits the lanes each operator
//    uses), not by the pool size.

#ifndef SEED_EXEC_WORKER_POOL_H_
#define SEED_EXEC_WORKER_POOL_H_

#include <atomic>
#include <cstddef>
#include <deque>
#include <functional>
#include <thread>
#include <vector>

#include "common/thread_annotations.h"

namespace seed::exec {

class WorkerPool;

/// Tracks a set of submitted tasks so the submitter can Await them.
/// Stack-allocate one per fan-out; must outlive the Await call.
class TaskGroup {
 public:
  TaskGroup() = default;
  TaskGroup(const TaskGroup&) = delete;
  TaskGroup& operator=(const TaskGroup&) = delete;

 private:
  friend class WorkerPool;
  std::atomic<int> pending_{0};
};

class WorkerPool {
 public:
  WorkerPool() = default;
  ~WorkerPool();
  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  /// The process-global pool every query execution shares.
  static WorkerPool& Global();

  /// Grows the pool to at least `n` worker threads (never shrinks).
  void EnsureWorkers(int n) SEED_EXCLUDES(mu_);
  int workers() const SEED_EXCLUDES(mu_);

  /// Enqueues `fn` under `group`. The task may run on any worker or on a
  /// thread helping inside Await.
  void Submit(TaskGroup* group, std::function<void()> fn) SEED_EXCLUDES(mu_);

  /// Blocks until every task submitted under `group` has finished,
  /// executing queued tasks (of any group) while it waits.
  void Await(TaskGroup* group) SEED_EXCLUDES(mu_);

  /// Runs fn(begin, end) over [0, n) split into morsels of `grain` rows,
  /// using up to `lanes` threads (the caller included). Workers claim
  /// morsels from a shared cursor — dynamic scheduling, so skewed morsel
  /// costs balance out. Returns when every morsel is done. With lanes < 2
  /// or n <= grain this is exactly fn(0, n) on the calling thread.
  ///
  /// Morsel boundaries are deterministic (begin is always a multiple of
  /// `grain`), so callers needing ordered output can write each morsel's
  /// result into slot begin/grain and concatenate.
  void ParallelFor(int lanes, std::size_t n, std::size_t grain,
                   const std::function<void(std::size_t, std::size_t)>& fn);

 private:
  struct Task {
    TaskGroup* group;
    std::function<void()> fn;
  };

  void WorkerLoop() SEED_EXCLUDES(mu_);
  /// Pops and runs one queued task; enters and leaves with mu_ held, but
  /// releases it while the task runs.
  void RunOneQueued() SEED_REQUIRES(mu_);
  void FinishTask(TaskGroup* group) SEED_EXCLUDES(mu_);

  mutable common::Mutex mu_;
  common::CondVar cv_;
  std::deque<Task> queue_ SEED_GUARDED_BY(mu_);
  std::vector<std::thread> workers_ SEED_GUARDED_BY(mu_);
  bool stop_ SEED_GUARDED_BY(mu_) = false;
};

}  // namespace seed::exec

#endif  // SEED_EXEC_WORKER_POOL_H_
