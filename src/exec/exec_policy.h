// The execution policy: how much parallelism a query execution may use,
// and the thresholds deciding when an operator's input is big enough to
// be worth splitting into morsels.
//
// One process-wide default thread count is resolved once from
// SEED_EXEC_THREADS (falling back to std::thread::hardware_concurrency)
// and can be changed at runtime (the shell's `threads` command). Every
// Planner/Algebra instance snapshots ExecPolicy::Default() at
// construction, so a query sees one consistent policy for its lifetime.
//
// The contract the thresholds protect: `threads == 1` is byte-for-byte
// the pre-parallel engine — no pool, no task, no partitioned operator —
// and inputs below `min_parallel_rows` take that same sequential path
// even at threads = 8, so small queries never pay coordination costs.

#ifndef SEED_EXEC_EXEC_POLICY_H_
#define SEED_EXEC_EXEC_POLICY_H_

#include <cstddef>

namespace seed::exec {

/// The process-wide default worker count: SEED_EXEC_THREADS when set to
/// a positive integer, else hardware concurrency, clamped to [1, 256].
/// Resolved once on first call; SetDefaultThreads overrides it after.
int DefaultThreads();

/// Overrides the default (the shell's `threads <n>` knob); clamped to
/// [1, 256]. Takes effect for policies snapshotted after the call.
void SetDefaultThreads(int threads);

struct ExecPolicy {
  /// Lanes an execution may use, the calling thread included. 1 disables
  /// every parallel path exactly.
  int threads = 1;
  /// Inputs below this many rows always run the sequential code path,
  /// whatever `threads` says.
  std::size_t min_parallel_rows = 4096;
  /// Rows per morsel when an operator's input is partitioned. Workers
  /// claim morsels dynamically, so a slow morsel never stalls the rest.
  std::size_t morsel_rows = 1024;
  /// A plan subtree is executed as a concurrent task only when both
  /// subtrees' modeled cost (row-visit units, see query/stats.h) reaches
  /// this floor — the DP's own estimates decide what is worth a task.
  double min_parallel_cost = 16384.0;

  /// The policy with the process-wide default thread count.
  static ExecPolicy Default();

  bool parallel() const { return threads > 1; }

  /// True when an operator over `rows` input rows should partition.
  bool ShouldPartition(std::size_t rows) const {
    return threads > 1 && rows >= min_parallel_rows;
  }
};

}  // namespace seed::exec

#endif  // SEED_EXEC_EXEC_POLICY_H_
