// Client session for the two-level multi-user design: a local Database
// copy for updates, backed by write locks in the central database, plus a
// local VersionManager ("versions are kept both locally and globally").

#ifndef SEED_MULTIUSER_CLIENT_H_
#define SEED_MULTIUSER_CLIENT_H_

#include <memory>
#include <string>
#include <vector>

#include "multiuser/server.h"
#include "version/snapshot.h"
#include "version/version_manager.h"

namespace seed::multiuser {

class ClientSession {
 public:
  /// Connects to the server and prepares an empty local workspace whose id
  /// generators start inside the client's id stripe.
  static Result<std::unique_ptr<ClientSession>> Open(Server* server,
                                                     std::string name);
  ~ClientSession();

  ClientSession(const ClientSession&) = delete;
  ClientSession& operator=(const ClientSession&) = delete;

  ClientId id() const { return id_; }
  Server* server() const { return server_; }

  /// Local working copy: make updates here with the normal Database API
  /// (consistency is checked locally; incomplete local data is fine
  /// because minimum cardinalities are completeness rules).
  core::Database* local() { return local_.get(); }

  /// Local version control over the working copy.
  version::VersionManager* local_versions() { return local_versions_.get(); }

  // --- Snapshot reads --------------------------------------------------------

  /// The frozen master snapshot this session reads (pinned at first use;
  /// see Server::SessionSnapshot). Retrieval against it never blocks on
  /// writers.
  Result<version::SnapshotPtr> View() {
    return server_->SessionSnapshot(id_);
  }

  /// Moves this session's read view to the latest published snapshot.
  Status Refresh() { return server_->RefreshSession(id_); }

  // --- Checkout / check-in ---------------------------------------------------

  /// Resolves `names` in the master (serialized with writers, so freshly
  /// committed roots resolve), write-locks their subtrees, and imports
  /// copies into the local workspace.
  Status CheckoutByName(const std::vector<std::string>& names);
  Status Checkout(const std::vector<ObjectId>& roots);

  /// Ships every locally changed item back; on success the server applied
  /// them in one transaction, all this client's locks are released, and
  /// the local workspace is cleared. `commit_seq` (if non-null) receives
  /// the commit's position in the server's total order; `shipped` (if
  /// non-null) receives the exact bundle sent, for replay harnesses.
  Status Checkin(std::uint64_t* commit_seq = nullptr,
                 CheckinBundle* shipped = nullptr);

  /// Releases all locks and drops local changes.
  Status Abandon();

 private:
  ClientSession(Server* server, ClientId id, std::uint64_t stripe_base);

  void ImportBundle(const CheckoutBundle& bundle);
  void ResetLocal();
  void CaptureWatermarks();

  Server* server_;
  ClientId id_;
  std::uint64_t stripe_base_;
  /// High-water marks of ids handed out from the stripe. They survive
  /// workspace resets: an id consumed in an earlier edit cycle may already
  /// live in the master and must never be reissued.
  std::uint64_t object_id_watermark_;
  std::uint64_t relationship_id_watermark_;
  std::unique_ptr<core::Database> local_;
  std::unique_ptr<version::VersionManager> local_versions_;
};

}  // namespace seed::multiuser

#endif  // SEED_MULTIUSER_CLIENT_H_
