// Two-level multi-user operation (paper, "Open problems"):
//
//   "One central server runs the complete database and several clients use
//   the server for retrieval operations, but take local copies for making
//   updates. Data that has been copied to a client for update has a write
//   lock in the central database. When a client sends an updated copy back
//   to the server, the server puts the modified data into the central
//   database in a single transaction. Versions are kept both locally and
//   globally under control of the user and the server, respectively."
//
// The paper left this unimplemented; we implement it in-process. Checkout
// granularity is the independent-object subtree. New item ids are drawn
// from per-client id stripes so concurrent clients never collide. Check-in
// is all-or-nothing: the server applies the client's changed items, audits
// consistency, and rolls the master back if the audit fails.
//
// Note how the paper's completeness split pays off here: a partial checkout
// is a *consistent* (if incomplete) database, because minimum cardinalities
// are not consistency rules.
//
// Concurrency model (docs/multiuser.md has the full contract):
//
//   * Snapshot reads. Every retrieval — Query, session reads, EXPLAIN —
//     runs against an immutable Snapshot of the master, pinned per
//     session. Readers never take a server mutex beyond a pointer copy
//     under `snapshot_mu_` and never block on a writer: a check-in
//     captures and publishes the next snapshot, it does not invalidate
//     the one readers hold.
//   * Striped write locks. Write-lock ownership lives in a LockStripes
//     table keyed at checkout granularity, so disjoint checkouts and
//     check-ins proceed in parallel; only the master-mutation span of a
//     check-in serializes, under `master_mu_`.
//   * Lock order (outer to inner): sessions_mu_ -> lock stripes ->
//     master_mu_ -> snapshot_mu_. No method takes an earlier mutex while
//     holding a later one.
//
// Direct access through master()/global_versions() bypasses all of this
// and is for single-threaded setup and inspection only; call
// PublishSnapshot() after direct master mutations so sessions see them.

#ifndef SEED_MULTIUSER_SERVER_H_
#define SEED_MULTIUSER_SERVER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "common/thread_annotations.h"
#include "core/database.h"
#include "multiuser/lock_stripes.h"
#include "query/parser.h"
#include "version/snapshot.h"
#include "version/version_manager.h"

namespace seed::multiuser {

/// Items shipped to a client at checkout.
struct CheckoutBundle {
  std::vector<core::ObjectItem> objects;
  std::vector<core::RelationshipItem> relationships;
};

/// Items shipped back at check-in.
struct CheckinBundle {
  std::vector<core::ObjectItem> objects;
  std::vector<core::RelationshipItem> relationships;
};

class Server {
 public:
  /// The server owns the master database and its global version manager.
  explicit Server(schema::SchemaPtr schema);

  core::Database* master() { return master_.get(); }
  const core::Database& master() const { return *master_; }
  version::VersionManager* global_versions() { return versions_.get(); }
  const schema::SchemaPtr& schema() const { return schema_; }

  // --- Sessions --------------------------------------------------------------

  Result<ClientId> Connect(std::string client_name)
      SEED_EXCLUDES(sessions_mu_);
  Status Disconnect(ClientId client) SEED_EXCLUDES(sessions_mu_);
  size_t num_clients() const SEED_EXCLUDES(sessions_mu_) {
    common::MutexLock lock(sessions_mu_);
    return clients_.size();
  }

  /// Disjoint id stripe for new items created by this client.
  Result<std::uint64_t> IdStripeBase(ClientId client) const
      SEED_EXCLUDES(sessions_mu_);

  // --- Snapshot reads --------------------------------------------------------

  /// The latest published snapshot; captures one first if none has been
  /// published yet. Pinning is a refcount bump — the caller may read the
  /// result for as long as it likes without blocking any writer.
  version::SnapshotPtr PinSnapshot() SEED_EXCLUDES(master_mu_);

  /// Captures the master's current state and publishes it as the latest
  /// snapshot. Check-in does this automatically on every successful
  /// commit; call it manually after mutating the master directly.
  void PublishSnapshot() SEED_EXCLUDES(master_mu_);

  /// The snapshot pinned to `client`'s session: fixed at first use and
  /// across reads until RefreshSession (or the client's own successful
  /// check-in) moves it forward — repeated reads in a session see one
  /// frozen state, not a moving target.
  Result<version::SnapshotPtr> SessionSnapshot(ClientId client)
      SEED_EXCLUDES(sessions_mu_);

  /// Re-pins `client`'s session to the latest published snapshot.
  Status RefreshSession(ClientId client) SEED_EXCLUDES(sessions_mu_);

  /// Epoch of the latest published snapshot (0 before the first publish).
  std::uint64_t snapshot_epoch() const {
    return snapshot_epoch_.load(std::memory_order_acquire);
  }

  /// Looks up an independent object by name in the *master* (not a
  /// session snapshot), serialized with writers. This is the checkout
  /// name-resolution path: a root created by another client's fresh
  /// commit is visible here even before this session refreshes.
  Result<ObjectId> ResolveRoot(std::string_view name) const
      SEED_EXCLUDES(master_mu_);

  /// Runs a `find ...` object query against `client`'s session snapshot.
  Result<std::vector<ObjectId>> Query(ClientId client, std::string_view text,
                                      std::string* plan_out = nullptr,
                                      query::QueryTrace* trace = nullptr)
      SEED_EXCLUDES(sessions_mu_);

  // --- Locks and checkout ----------------------------------------------------

  /// Write-locks the subtrees rooted at `roots` for `client` and returns
  /// copies of their items plus the relationships among them. Fails with
  /// kLockConflict if any root is locked by another client; acquisition
  /// is all-or-nothing, so a failed checkout leaves no locks behind.
  Result<CheckoutBundle> Checkout(ClientId client,
                                  const std::vector<ObjectId>& roots)
      SEED_EXCLUDES(master_mu_);

  /// True if the independent object `root` is write-locked.
  bool IsLocked(ObjectId root) const { return locks_.IsLocked(root); }
  Result<ClientId> LockOwner(ObjectId root) const {
    return locks_.OwnerOf(root);
  }
  std::vector<ObjectId> LocksOf(ClientId client) const {
    return locks_.LocksOf(client);
  }
  size_t num_locks() const { return locks_.num_held(); }

  /// Releases locks without checking in (abandon local changes).
  Status ReleaseLocks(ClientId client, const std::vector<ObjectId>& roots);

  // --- Check-in --------------------------------------------------------------

  /// Applies the client's modified items to the master in a single
  /// transaction: every changed pre-existing item must belong to a subtree
  /// locked by the client; the master is audited afterwards and rolled
  /// back wholesale on any consistency violation (locks are kept, so the
  /// client can repair and retry). On success the client's locks are
  /// released, the next snapshot is published, the client's session is
  /// re-pinned to it (read-your-writes), and `commit_seq` (if non-null)
  /// receives this commit's position in the server's total commit order.
  Status Checkin(ClientId client, const CheckinBundle& bundle,
                 std::uint64_t* commit_seq = nullptr)
      SEED_EXCLUDES(master_mu_);

  std::uint64_t checkins_applied() const {
    return checkins_applied_.load(std::memory_order_relaxed);
  }
  std::uint64_t checkins_rejected() const {
    return checkins_rejected_.load(std::memory_order_relaxed);
  }
  std::uint64_t lock_conflicts() const {
    return lock_conflicts_.load(std::memory_order_relaxed);
  }

 private:
  struct ClientInfo {
    std::string name;
    std::uint64_t stripe_base = 0;
    /// Pinned lazily at first read, advanced by RefreshSession and by the
    /// client's own successful check-ins.
    version::SnapshotPtr snapshot;
  };

  /// Independent root of an object (walks parent objects; for relationship
  /// attributes, the root of the relationship's role-0 end). Reads the
  /// master, so it must be serialized with writers.
  ObjectId RootOf(ObjectId id) const SEED_REQUIRES(master_mu_);

  /// Latest snapshot without the pin tally (shared by the public pin
  /// entry points, which each count one pin).
  version::SnapshotPtr PinLatest() SEED_EXCLUDES(master_mu_);

  /// Captures and publishes the next snapshot; bumps the epoch.
  void PublishSnapshotLocked() SEED_REQUIRES(master_mu_);

  schema::SchemaPtr schema_;
  // Set once in the constructor and never reset. The pointees are
  // single-threaded; every mutation and every direct read of the master
  // runs under master_mu_, which is the "serializes at the server"
  // contract — concurrent retrieval goes through snapshots instead.
  std::unique_ptr<core::Database> master_;
  std::unique_ptr<version::VersionManager> versions_;

  mutable common::Mutex sessions_mu_;
  std::unordered_map<ClientId, ClientInfo> clients_
      SEED_GUARDED_BY(sessions_mu_);
  IdGenerator<ClientId> client_ids_ SEED_GUARDED_BY(sessions_mu_);
  std::uint64_t next_stripe_ SEED_GUARDED_BY(sessions_mu_) = 1;

  /// Write-lock ownership at checkout granularity; internally striped and
  /// synchronized (it is the replacement for the old single server mutex
  /// on the lock path).
  LockStripes locks_;

  /// Serializes master mutation and direct master reads (check-in
  /// application, checkout copying, ResolveRoot, snapshot capture).
  mutable common::Mutex master_mu_;
  std::uint64_t next_commit_seq_ SEED_GUARDED_BY(master_mu_) = 1;

  /// Publication point for snapshot reads: held only for pointer copies.
  mutable common::Mutex snapshot_mu_;
  version::SnapshotPtr current_snapshot_ SEED_GUARDED_BY(snapshot_mu_);
  std::atomic<std::uint64_t> snapshot_epoch_{0};

  // Outcome tallies are atomics so accessors stay lock-free for
  // observability samplers.
  std::atomic<std::uint64_t> checkins_applied_{0};
  std::atomic<std::uint64_t> checkins_rejected_{0};
  std::atomic<std::uint64_t> lock_conflicts_{0};
};

}  // namespace seed::multiuser

#endif  // SEED_MULTIUSER_SERVER_H_
