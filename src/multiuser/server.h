// Two-level multi-user operation (paper, "Open problems"):
//
//   "One central server runs the complete database and several clients use
//   the server for retrieval operations, but take local copies for making
//   updates. Data that has been copied to a client for update has a write
//   lock in the central database. When a client sends an updated copy back
//   to the server, the server puts the modified data into the central
//   database in a single transaction. Versions are kept both locally and
//   globally under control of the user and the server, respectively."
//
// The paper left this unimplemented; we implement it in-process. Checkout
// granularity is the independent-object subtree. New item ids are drawn
// from per-client id stripes so concurrent clients never collide. Check-in
// is all-or-nothing: the server applies the client's changed items, audits
// consistency, and rolls the master back if the audit fails.
//
// Note how the paper's completeness split pays off here: a partial checkout
// is a *consistent* (if incomplete) database, because minimum cardinalities
// are not consistency rules.

#ifndef SEED_MULTIUSER_SERVER_H_
#define SEED_MULTIUSER_SERVER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "common/thread_annotations.h"
#include "core/database.h"
#include "version/version_manager.h"

namespace seed::multiuser {

/// Items shipped to a client at checkout.
struct CheckoutBundle {
  std::vector<core::ObjectItem> objects;
  std::vector<core::RelationshipItem> relationships;
};

/// Items shipped back at check-in.
struct CheckinBundle {
  std::vector<core::ObjectItem> objects;
  std::vector<core::RelationshipItem> relationships;
};

/// Session, lock, and check-in state is internally synchronized: Connect,
/// Checkout, Checkin and the lock queries may be called from concurrent
/// client threads — every master mutation (Checkin's transaction) runs
/// under the same mutex, so the single-threaded core::Database underneath
/// is externally serialized by the server exactly as docs/execution.md
/// promises. Direct access through master()/global_versions() bypasses
/// that serialization and is for single-threaded setup and inspection
/// only.
class Server {
 public:
  /// The server owns the master database and its global version manager.
  explicit Server(schema::SchemaPtr schema);

  core::Database* master() { return master_.get(); }
  const core::Database& master() const { return *master_; }
  version::VersionManager* global_versions() { return versions_.get(); }

  // --- Sessions ----------------------------------------------------------------

  Result<ClientId> Connect(std::string client_name) SEED_EXCLUDES(mu_);
  Status Disconnect(ClientId client) SEED_EXCLUDES(mu_);
  size_t num_clients() const SEED_EXCLUDES(mu_) {
    common::MutexLock lock(mu_);
    return clients_.size();
  }

  /// Disjoint id stripe for new items created by this client.
  Result<std::uint64_t> IdStripeBase(ClientId client) const
      SEED_EXCLUDES(mu_);

  // --- Locks and checkout ----------------------------------------------------------

  /// Write-locks the subtrees rooted at `roots` for `client` and returns
  /// copies of their items plus the relationships among them. Fails with
  /// kLockConflict if any root is locked by another client.
  Result<CheckoutBundle> Checkout(ClientId client,
                                  const std::vector<ObjectId>& roots)
      SEED_EXCLUDES(mu_);

  /// True if the independent object `root` is write-locked.
  bool IsLocked(ObjectId root) const SEED_EXCLUDES(mu_);
  Result<ClientId> LockOwner(ObjectId root) const SEED_EXCLUDES(mu_);
  std::vector<ObjectId> LocksOf(ClientId client) const SEED_EXCLUDES(mu_);

  /// Releases locks without checking in (abandon local changes).
  Status ReleaseLocks(ClientId client, const std::vector<ObjectId>& roots)
      SEED_EXCLUDES(mu_);

  // --- Check-in ------------------------------------------------------------------

  /// Applies the client's modified items to the master in a single
  /// transaction: every changed pre-existing item must belong to a subtree
  /// locked by the client; the master is audited afterwards and rolled
  /// back wholesale on any consistency violation. On success the client's
  /// locks on the affected roots are released.
  Status Checkin(ClientId client, const CheckinBundle& bundle)
      SEED_EXCLUDES(mu_);

  std::uint64_t checkins_applied() const {
    return checkins_applied_.load(std::memory_order_relaxed);
  }
  std::uint64_t checkins_rejected() const {
    return checkins_rejected_.load(std::memory_order_relaxed);
  }
  std::uint64_t lock_conflicts() const {
    return lock_conflicts_.load(std::memory_order_relaxed);
  }

 private:
  struct ClientInfo {
    std::string name;
    std::uint64_t stripe_base;
  };

  /// Independent root of an object (walks parent objects; for relationship
  /// attributes, the root of the relationship's role-0 end).
  ObjectId RootOf(ObjectId id) const;

  /// True iff `client` holds the write lock on `root`.
  bool HoldsLock(ClientId client, ObjectId root) const SEED_REQUIRES(mu_);

  core::ObjectItem CopyObject(ObjectId id) const;

  schema::SchemaPtr schema_;
  // Set once in the constructor and never reset. The pointees are
  // single-threaded; Checkin mutates the master only under mu_, which is
  // the "serializes at the server" contract.
  std::unique_ptr<core::Database> master_;
  std::unique_ptr<version::VersionManager> versions_;

  mutable common::Mutex mu_;
  std::unordered_map<ClientId, ClientInfo> clients_ SEED_GUARDED_BY(mu_);
  // root -> owner
  std::unordered_map<ObjectId, ClientId> locks_ SEED_GUARDED_BY(mu_);
  IdGenerator<ClientId> client_ids_ SEED_GUARDED_BY(mu_);
  std::uint64_t next_stripe_ SEED_GUARDED_BY(mu_) = 1;

  // Outcome tallies are atomics so accessors stay lock-free for
  // observability samplers; they are only incremented under mu_.
  std::atomic<std::uint64_t> checkins_applied_{0};
  std::atomic<std::uint64_t> checkins_rejected_{0};
  std::atomic<std::uint64_t> lock_conflicts_{0};
};

}  // namespace seed::multiuser

#endif  // SEED_MULTIUSER_SERVER_H_
