#include "multiuser/server.h"

#include <algorithm>

#include "common/macros.h"
#include "obs/metrics.h"

namespace seed::multiuser {

namespace {
/// Ids 2^40 apart can never collide between clients.
constexpr std::uint64_t kStripeSize = 1ull << 40;

obs::Gauge* SessionsGauge() {
  static obs::Gauge* gauge = obs::MetricsRegistry::Global().GetGauge(
      "multiuser.sessions.connected");
  return gauge;
}

void CountCheckinRejected() {
  static obs::Counter* rejected = obs::MetricsRegistry::Global().GetCounter(
      "multiuser.checkins.rejected.total");
  rejected->Increment();
}
}  // namespace

Server::Server(schema::SchemaPtr schema) : schema_(std::move(schema)) {
  master_ = std::make_unique<core::Database>(schema_);
  versions_ = std::make_unique<version::VersionManager>(master_.get());
}

Result<ClientId> Server::Connect(std::string client_name) {
  common::MutexLock lock(mu_);
  ClientId id = client_ids_.Next();
  ClientInfo info;
  info.name = std::move(client_name);
  info.stripe_base = next_stripe_ * kStripeSize;
  ++next_stripe_;
  clients_[id] = std::move(info);
  SessionsGauge()->Add(1);
  return id;
}

Status Server::Disconnect(ClientId client) {
  common::MutexLock lock(mu_);
  auto it = clients_.find(client);
  if (it == clients_.end()) {
    return Status::NotFound("client " + std::to_string(client.raw()));
  }
  // Release every lock the client still holds.
  for (auto lock_it = locks_.begin(); lock_it != locks_.end();) {
    if (lock_it->second == client) {
      lock_it = locks_.erase(lock_it);
    } else {
      ++lock_it;
    }
  }
  clients_.erase(it);
  SessionsGauge()->Add(-1);
  return Status::OK();
}

Result<std::uint64_t> Server::IdStripeBase(ClientId client) const {
  common::MutexLock lock(mu_);
  auto it = clients_.find(client);
  if (it == clients_.end()) {
    return Status::NotFound("client " + std::to_string(client.raw()));
  }
  return it->second.stripe_base;
}

ObjectId Server::RootOf(ObjectId id) const {
  const auto& objects = master_->objects_raw();
  ObjectId cur = id;
  size_t steps = 0;
  while (steps++ <= objects.size()) {
    auto it = objects.find(cur);
    if (it == objects.end()) return cur;
    const core::ObjectItem& obj = it->second;
    if (obj.is_independent()) return cur;
    if (obj.parent_kind == core::ParentKind::kObject) {
      cur = obj.parent_object;
      continue;
    }
    // Relationship attribute: anchor at the role-0 participant's root.
    auto rel_it =
        master_->relationships_raw().find(obj.parent_relationship);
    if (rel_it == master_->relationships_raw().end()) return cur;
    cur = rel_it->second.ends[0];
  }
  return cur;
}

bool Server::HoldsLock(ClientId client, ObjectId root) const {
  auto it = locks_.find(root);
  return it != locks_.end() && it->second == client;
}

bool Server::IsLocked(ObjectId root) const {
  common::MutexLock lock(mu_);
  return locks_.find(root) != locks_.end();
}

Result<ClientId> Server::LockOwner(ObjectId root) const {
  common::MutexLock lock(mu_);
  auto it = locks_.find(root);
  if (it == locks_.end()) {
    return Status::NotFound("no lock on object " + std::to_string(root.raw()));
  }
  return it->second;
}

std::vector<ObjectId> Server::LocksOf(ClientId client) const {
  common::MutexLock lock(mu_);
  std::vector<ObjectId> out;
  for (const auto& [root, owner] : locks_) {
    if (owner == client) out.push_back(root);
  }
  std::sort(out.begin(), out.end());
  return out;
}

Result<CheckoutBundle> Server::Checkout(ClientId client,
                                        const std::vector<ObjectId>& roots) {
  common::MutexLock lock(mu_);
  static obs::Counter* checkouts = obs::MetricsRegistry::Global().GetCounter(
      "multiuser.checkouts.total");
  checkouts->Increment();
  if (clients_.find(client) == clients_.end()) {
    return Status::NotFound("client " + std::to_string(client.raw()));
  }
  // Validate all roots first: existence, independence, lock availability.
  for (ObjectId root : roots) {
    SEED_ASSIGN_OR_RETURN(const core::ObjectItem* obj,
                          master_->GetObject(root));
    if (!obj->is_independent()) {
      return Status::InvalidArgument(
          "checkout granularity is the independent object; '" +
          master_->FullName(root) + "' is dependent");
    }
    auto lock_it = locks_.find(root);
    if (lock_it != locks_.end() && lock_it->second != client) {
      lock_conflicts_.fetch_add(1, std::memory_order_relaxed);
      static obs::Counter* conflicts =
          obs::MetricsRegistry::Global().GetCounter(
              "multiuser.lock_conflicts.total");
      conflicts->Increment();
      return Status::LockConflict(
          "object '" + master_->FullName(root) + "' is write-locked by "
          "client " + std::to_string(lock_it->second.raw()));
    }
  }
  // Acquire locks and collect subtree copies.
  CheckoutBundle bundle;
  std::unordered_set<ObjectId> in_bundle;
  for (ObjectId root : roots) {
    locks_[root] = client;
    std::vector<ObjectId> work{root};
    while (!work.empty()) {
      ObjectId oid = work.back();
      work.pop_back();
      auto it = master_->objects_raw().find(oid);
      if (it == master_->objects_raw().end() || it->second.deleted) continue;
      if (!in_bundle.insert(oid).second) continue;
      bundle.objects.push_back(it->second);
      work.insert(work.end(), it->second.children.begin(),
                  it->second.children.end());
    }
  }
  // Relationships whose both ends are in the bundle, plus their attribute
  // subtrees.
  for (const auto& [rid, rel] : master_->relationships_raw()) {
    if (rel.deleted) continue;
    if (in_bundle.count(rel.ends[0]) == 0 ||
        in_bundle.count(rel.ends[1]) == 0) {
      continue;
    }
    bundle.relationships.push_back(rel);
    std::vector<ObjectId> work(rel.children.begin(), rel.children.end());
    while (!work.empty()) {
      ObjectId oid = work.back();
      work.pop_back();
      auto it = master_->objects_raw().find(oid);
      if (it == master_->objects_raw().end() || it->second.deleted) continue;
      if (!in_bundle.insert(oid).second) continue;
      bundle.objects.push_back(it->second);
      work.insert(work.end(), it->second.children.begin(),
                  it->second.children.end());
    }
  }
  return bundle;
}

Status Server::ReleaseLocks(ClientId client,
                            const std::vector<ObjectId>& roots) {
  common::MutexLock lock(mu_);
  for (ObjectId root : roots) {
    auto it = locks_.find(root);
    if (it == locks_.end() || it->second != client) {
      return Status::FailedPrecondition(
          "client does not hold the lock on object " +
          std::to_string(root.raw()));
    }
  }
  for (ObjectId root : roots) locks_.erase(root);
  return Status::OK();
}

Status Server::Checkin(ClientId client, const CheckinBundle& bundle) {
  common::MutexLock lock(mu_);
  auto client_it = clients_.find(client);
  if (client_it == clients_.end()) {
    return Status::NotFound("client " + std::to_string(client.raw()));
  }
  std::uint64_t stripe_lo = client_it->second.stripe_base;
  std::uint64_t stripe_hi = stripe_lo + kStripeSize;

  // --- Validate lock coverage -------------------------------------------------
  const auto& objects = master_->objects_raw();
  const auto& rels = master_->relationships_raw();
  for (const core::ObjectItem& obj : bundle.objects) {
    auto existing = objects.find(obj.id);
    if (existing != objects.end()) {
      if (!HoldsLock(client, RootOf(obj.id))) {
        checkins_rejected_.fetch_add(1, std::memory_order_relaxed);
        CountCheckinRejected();
        return Status::LockConflict(
            "modified object '" + master_->FullName(obj.id) +
            "' is not covered by a write lock of this client");
      }
    } else if (obj.id.raw() < stripe_lo || obj.id.raw() >= stripe_hi) {
      checkins_rejected_.fetch_add(1, std::memory_order_relaxed);
      CountCheckinRejected();
      return Status::FailedPrecondition(
          "new object id " + std::to_string(obj.id.raw()) +
          " lies outside the client's id stripe");
    }
  }
  for (const core::RelationshipItem& rel : bundle.relationships) {
    auto existing = rels.find(rel.id);
    if (existing == rels.end() &&
        (rel.id.raw() < stripe_lo || rel.id.raw() >= stripe_hi)) {
      checkins_rejected_.fetch_add(1, std::memory_order_relaxed);
      CountCheckinRejected();
      return Status::FailedPrecondition(
          "new relationship id " + std::to_string(rel.id.raw()) +
          " lies outside the client's id stripe");
    }
    // Every pre-existing participant must be covered by a lock: creating
    // or changing a relationship updates both ends' participation.
    for (ObjectId end : rel.ends) {
      if (objects.find(end) != objects.end() && !HoldsLock(client, RootOf(end))) {
        checkins_rejected_.fetch_add(1, std::memory_order_relaxed);
        CountCheckinRejected();
        return Status::LockConflict(
            "relationship participant '" + master_->FullName(end) +
            "' is not covered by a write lock of this client");
      }
    }
  }

  // --- Apply as a single transaction with undo log ---------------------------------
  struct ObjectUndo {
    ObjectId id;
    bool existed;
    core::ObjectItem old_state;
  };
  struct RelationshipUndo {
    RelationshipId id;
    bool existed;
    core::RelationshipItem old_state;
  };
  std::vector<ObjectUndo> object_undo;
  std::vector<RelationshipUndo> rel_undo;
  for (const core::ObjectItem& obj : bundle.objects) {
    auto existing = objects.find(obj.id);
    ObjectUndo undo;
    undo.id = obj.id;
    undo.existed = existing != objects.end();
    if (undo.existed) undo.old_state = existing->second;
    object_undo.push_back(std::move(undo));
    master_->RestoreObject(obj);
  }
  for (const core::RelationshipItem& rel : bundle.relationships) {
    auto existing = rels.find(rel.id);
    RelationshipUndo undo;
    undo.id = rel.id;
    undo.existed = existing != rels.end();
    if (undo.existed) undo.old_state = existing->second;
    rel_undo.push_back(std::move(undo));
    master_->RestoreRelationship(rel);
  }
  master_->RebuildIndexes();

  core::Report audit = master_->AuditConsistency();
  if (!audit.clean()) {
    for (auto it = rel_undo.rbegin(); it != rel_undo.rend(); ++it) {
      if (it->existed) {
        master_->RestoreRelationship(it->old_state);
      } else {
        master_->EraseRelationshipTrusted(it->id);
      }
    }
    for (auto it = object_undo.rbegin(); it != object_undo.rend(); ++it) {
      if (it->existed) {
        master_->RestoreObject(it->old_state);
      } else {
        master_->EraseObjectTrusted(it->id);
      }
    }
    master_->RebuildIndexes();
    checkins_rejected_.fetch_add(1, std::memory_order_relaxed);
    CountCheckinRejected();
    return Status::ConsistencyViolation(
        "check-in rejected: " + audit.violations.front().ToString() +
        (audit.size() > 1
             ? " (and " + std::to_string(audit.size() - 1) + " more)"
             : ""));
  }

  // Success: release all locks held by this client.
  for (auto it = locks_.begin(); it != locks_.end();) {
    if (it->second == client) {
      it = locks_.erase(it);
    } else {
      ++it;
    }
  }
  checkins_applied_.fetch_add(1, std::memory_order_relaxed);
  static obs::Counter* applied = obs::MetricsRegistry::Global().GetCounter(
      "multiuser.checkins.applied.total");
  applied->Increment();
  return Status::OK();
}

}  // namespace seed::multiuser
