#include "multiuser/server.h"

#include <algorithm>
#include <unordered_set>

#include "common/macros.h"
#include "obs/metrics.h"

namespace seed::multiuser {

namespace {
/// Ids 2^40 apart can never collide between clients.
constexpr std::uint64_t kStripeSize = 1ull << 40;

obs::Gauge* SessionsGauge() {
  static obs::Gauge* gauge = obs::MetricsRegistry::Global().GetGauge(
      "multiuser.sessions.connected");
  return gauge;
}

obs::Gauge* LocksHeldGauge() {
  static obs::Gauge* gauge =
      obs::MetricsRegistry::Global().GetGauge("server.locks.held");
  return gauge;
}

void CountCheckinRejected() {
  static obs::Counter* rejected = obs::MetricsRegistry::Global().GetCounter(
      "multiuser.checkins.rejected.total");
  rejected->Increment();
}

void CountSnapshotPin() {
  static obs::Counter* pins = obs::MetricsRegistry::Global().GetCounter(
      "server.snapshot.pins.total");
  pins->Increment();
}
}  // namespace

Server::Server(schema::SchemaPtr schema) : schema_(std::move(schema)) {
  master_ = std::make_unique<core::Database>(schema_);
  versions_ = std::make_unique<version::VersionManager>(master_.get());
}

Result<ClientId> Server::Connect(std::string client_name) {
  common::MutexLock lock(sessions_mu_);
  ClientId id = client_ids_.Next();
  ClientInfo info;
  info.name = std::move(client_name);
  info.stripe_base = next_stripe_ * kStripeSize;
  ++next_stripe_;
  clients_[id] = std::move(info);
  SessionsGauge()->Add(1);
  return id;
}

Status Server::Disconnect(ClientId client) {
  {
    common::MutexLock lock(sessions_mu_);
    auto it = clients_.find(client);
    if (it == clients_.end()) {
      return Status::NotFound("client " + std::to_string(client.raw()));
    }
    clients_.erase(it);
    SessionsGauge()->Add(-1);
  }
  // Release every lock the client still holds.
  locks_.ReleaseAllOf(client);
  LocksHeldGauge()->Set(static_cast<std::int64_t>(locks_.num_held()));
  return Status::OK();
}

Result<std::uint64_t> Server::IdStripeBase(ClientId client) const {
  common::MutexLock lock(sessions_mu_);
  auto it = clients_.find(client);
  if (it == clients_.end()) {
    return Status::NotFound("client " + std::to_string(client.raw()));
  }
  return it->second.stripe_base;
}

// --- Snapshots ---------------------------------------------------------------

void Server::PublishSnapshotLocked() {
  std::uint64_t epoch = snapshot_epoch_.load(std::memory_order_relaxed) + 1;
  version::SnapshotPtr snap = version::Snapshot::Capture(*master_, epoch);
  {
    common::MutexLock lock(snapshot_mu_);
    current_snapshot_ = std::move(snap);
  }
  snapshot_epoch_.store(epoch, std::memory_order_release);
  static obs::Counter* publishes = obs::MetricsRegistry::Global().GetCounter(
      "server.snapshot.publishes.total");
  publishes->Increment();
  static obs::Gauge* epoch_gauge =
      obs::MetricsRegistry::Global().GetGauge("server.snapshot.epoch");
  epoch_gauge->Set(static_cast<std::int64_t>(epoch));
}

void Server::PublishSnapshot() {
  common::MutexLock lock(master_mu_);
  PublishSnapshotLocked();
}

version::SnapshotPtr Server::PinLatest() {
  {
    common::MutexLock lock(snapshot_mu_);
    if (current_snapshot_ != nullptr) return current_snapshot_;
  }
  // Nothing published yet: capture the initial snapshot. Two racing first
  // pins may both publish; the second simply becomes the newer epoch.
  PublishSnapshot();
  common::MutexLock lock(snapshot_mu_);
  return current_snapshot_;
}

version::SnapshotPtr Server::PinSnapshot() {
  CountSnapshotPin();
  return PinLatest();
}

Result<version::SnapshotPtr> Server::SessionSnapshot(ClientId client) {
  {
    common::MutexLock lock(sessions_mu_);
    auto it = clients_.find(client);
    if (it == clients_.end()) {
      return Status::NotFound("client " + std::to_string(client.raw()));
    }
    if (it->second.snapshot != nullptr) {
      CountSnapshotPin();
      return it->second.snapshot;
    }
  }
  version::SnapshotPtr snap = PinLatest();
  common::MutexLock lock(sessions_mu_);
  auto it = clients_.find(client);
  if (it == clients_.end()) {
    return Status::NotFound("client " + std::to_string(client.raw()));
  }
  // First read of this session; a concurrent refresh may have pinned one
  // in the window above, in which case that pin wins.
  if (it->second.snapshot == nullptr) it->second.snapshot = std::move(snap);
  CountSnapshotPin();
  return it->second.snapshot;
}

Status Server::RefreshSession(ClientId client) {
  version::SnapshotPtr snap = PinLatest();
  common::MutexLock lock(sessions_mu_);
  auto it = clients_.find(client);
  if (it == clients_.end()) {
    return Status::NotFound("client " + std::to_string(client.raw()));
  }
  it->second.snapshot = std::move(snap);
  CountSnapshotPin();
  return Status::OK();
}

Result<ObjectId> Server::ResolveRoot(std::string_view name) const {
  common::MutexLock lock(master_mu_);
  return master_->FindObjectByName(name);
}

Result<std::vector<ObjectId>> Server::Query(ClientId client,
                                            std::string_view text,
                                            std::string* plan_out,
                                            query::QueryTrace* trace) {
  static obs::Counter* queries =
      obs::MetricsRegistry::Global().GetCounter("server.queries.total");
  queries->Increment();
  SEED_ASSIGN_OR_RETURN(version::SnapshotPtr snap, SessionSnapshot(client));
  return query::RunQuery(version::PinDatabase(std::move(snap)), text,
                         plan_out, trace);
}

// --- Locks and checkout ------------------------------------------------------

ObjectId Server::RootOf(ObjectId id) const {
  const auto& objects = master_->objects_raw();
  ObjectId cur = id;
  size_t steps = 0;
  while (steps++ <= objects.size()) {
    auto it = objects.find(cur);
    if (it == objects.end()) return cur;
    const core::ObjectItem& obj = it->second;
    if (obj.is_independent()) return cur;
    if (obj.parent_kind == core::ParentKind::kObject) {
      cur = obj.parent_object;
      continue;
    }
    // Relationship attribute: anchor at the role-0 participant's root.
    auto rel_it =
        master_->relationships_raw().find(obj.parent_relationship);
    if (rel_it == master_->relationships_raw().end()) return cur;
    cur = rel_it->second.ends[0];
  }
  return cur;
}

Result<CheckoutBundle> Server::Checkout(ClientId client,
                                        const std::vector<ObjectId>& roots) {
  static obs::Counter* checkouts = obs::MetricsRegistry::Global().GetCounter(
      "multiuser.checkouts.total");
  checkouts->Increment();
  {
    common::MutexLock lock(sessions_mu_);
    if (clients_.find(client) == clients_.end()) {
      return Status::NotFound("client " + std::to_string(client.raw()));
    }
  }

  // Take the write locks first, all-or-nothing; disjoint checkouts only
  // ever meet inside the stripe table, never on a server-wide mutex.
  std::vector<ObjectId> acquired;
  Status lock_status = locks_.AcquireAll(client, roots, &acquired);
  if (!lock_status.ok()) {
    lock_conflicts_.fetch_add(1, std::memory_order_relaxed);
    static obs::Counter* conflicts = obs::MetricsRegistry::Global().GetCounter(
        "multiuser.lock_conflicts.total");
    conflicts->Increment();
    return lock_status;
  }
  LocksHeldGauge()->Set(static_cast<std::int64_t>(locks_.num_held()));

  // The copy itself reads the master, serialized with check-in writers.
  // Locks were granted optimistically above, so a failed validation must
  // give back exactly the locks this call added (re-entrant holdings
  // stay) — after the master mutex is dropped, per the lock order.
  Status status = Status::OK();
  CheckoutBundle bundle;
  {
    common::MutexLock lock(master_mu_);
    // Validate all roots: existence and independence.
    for (ObjectId root : roots) {
      auto obj = master_->GetObject(root);
      if (!obj.ok()) {
        status = obj.status();
        break;
      }
      if (!(*obj)->is_independent()) {
        status = Status::InvalidArgument(
            "checkout granularity is the independent object; '" +
            master_->FullName(root) + "' is dependent");
        break;
      }
    }
    if (status.ok()) {
      // Collect subtree copies.
      std::unordered_set<ObjectId> in_bundle;
      for (ObjectId root : roots) {
        std::vector<ObjectId> work{root};
        while (!work.empty()) {
          ObjectId oid = work.back();
          work.pop_back();
          auto it = master_->objects_raw().find(oid);
          if (it == master_->objects_raw().end() || it->second.deleted) {
            continue;
          }
          if (!in_bundle.insert(oid).second) continue;
          bundle.objects.push_back(it->second);
          work.insert(work.end(), it->second.children.begin(),
                      it->second.children.end());
        }
      }
      // Relationships whose both ends are in the bundle, plus their
      // attribute subtrees.
      for (const auto& [rid, rel] : master_->relationships_raw()) {
        if (rel.deleted) continue;
        if (in_bundle.count(rel.ends[0]) == 0 ||
            in_bundle.count(rel.ends[1]) == 0) {
          continue;
        }
        bundle.relationships.push_back(rel);
        std::vector<ObjectId> work(rel.children.begin(), rel.children.end());
        while (!work.empty()) {
          ObjectId oid = work.back();
          work.pop_back();
          auto it = master_->objects_raw().find(oid);
          if (it == master_->objects_raw().end() || it->second.deleted) {
            continue;
          }
          if (!in_bundle.insert(oid).second) continue;
          bundle.objects.push_back(it->second);
          work.insert(work.end(), it->second.children.begin(),
                      it->second.children.end());
        }
      }
    }
  }
  if (!status.ok()) {
    if (!acquired.empty()) (void)locks_.Release(client, acquired);
    LocksHeldGauge()->Set(static_cast<std::int64_t>(locks_.num_held()));
    return status;
  }
  return bundle;
}

Status Server::ReleaseLocks(ClientId client,
                            const std::vector<ObjectId>& roots) {
  SEED_RETURN_IF_ERROR(locks_.Release(client, roots));
  LocksHeldGauge()->Set(static_cast<std::int64_t>(locks_.num_held()));
  return Status::OK();
}

// --- Check-in ----------------------------------------------------------------

Status Server::Checkin(ClientId client, const CheckinBundle& bundle,
                       std::uint64_t* commit_seq) {
  std::uint64_t stripe_lo = 0;
  {
    common::MutexLock lock(sessions_mu_);
    auto client_it = clients_.find(client);
    if (client_it == clients_.end()) {
      return Status::NotFound("client " + std::to_string(client.raw()));
    }
    stripe_lo = client_it->second.stripe_base;
  }
  std::uint64_t stripe_hi = stripe_lo + kStripeSize;

  std::uint64_t seq = 0;
  {
    common::MutexLock lock(master_mu_);

    // --- Validate lock coverage ----------------------------------------------
    const auto& objects = master_->objects_raw();
    const auto& rels = master_->relationships_raw();
    for (const core::ObjectItem& obj : bundle.objects) {
      auto existing = objects.find(obj.id);
      if (existing != objects.end()) {
        if (!locks_.IsHeldBy(client, RootOf(obj.id))) {
          checkins_rejected_.fetch_add(1, std::memory_order_relaxed);
          CountCheckinRejected();
          return Status::LockConflict(
              "modified object '" + master_->FullName(obj.id) +
              "' is not covered by a write lock of this client");
        }
      } else if (obj.id.raw() < stripe_lo || obj.id.raw() >= stripe_hi) {
        checkins_rejected_.fetch_add(1, std::memory_order_relaxed);
        CountCheckinRejected();
        return Status::FailedPrecondition(
            "new object id " + std::to_string(obj.id.raw()) +
            " lies outside the client's id stripe");
      }
    }
    for (const core::RelationshipItem& rel : bundle.relationships) {
      auto existing = rels.find(rel.id);
      if (existing == rels.end() &&
          (rel.id.raw() < stripe_lo || rel.id.raw() >= stripe_hi)) {
        checkins_rejected_.fetch_add(1, std::memory_order_relaxed);
        CountCheckinRejected();
        return Status::FailedPrecondition(
            "new relationship id " + std::to_string(rel.id.raw()) +
            " lies outside the client's id stripe");
      }
      // Every pre-existing participant must be covered by a lock: creating
      // or changing a relationship updates both ends' participation.
      for (ObjectId end : rel.ends) {
        if (objects.find(end) != objects.end() &&
            !locks_.IsHeldBy(client, RootOf(end))) {
          checkins_rejected_.fetch_add(1, std::memory_order_relaxed);
          CountCheckinRejected();
          return Status::LockConflict(
              "relationship participant '" + master_->FullName(end) +
              "' is not covered by a write lock of this client");
        }
      }
    }

    // --- Apply as a single transaction with undo log -------------------------
    struct ObjectUndo {
      ObjectId id;
      bool existed;
      core::ObjectItem old_state;
    };
    struct RelationshipUndo {
      RelationshipId id;
      bool existed;
      core::RelationshipItem old_state;
    };
    std::vector<ObjectUndo> object_undo;
    std::vector<RelationshipUndo> rel_undo;
    for (const core::ObjectItem& obj : bundle.objects) {
      auto existing = objects.find(obj.id);
      ObjectUndo undo;
      undo.id = obj.id;
      undo.existed = existing != objects.end();
      if (undo.existed) undo.old_state = existing->second;
      object_undo.push_back(std::move(undo));
      master_->RestoreObject(obj);
    }
    for (const core::RelationshipItem& rel : bundle.relationships) {
      auto existing = rels.find(rel.id);
      RelationshipUndo undo;
      undo.id = rel.id;
      undo.existed = existing != rels.end();
      if (undo.existed) undo.old_state = existing->second;
      rel_undo.push_back(std::move(undo));
      master_->RestoreRelationship(rel);
    }
    master_->RebuildIndexes();

    core::Report audit = master_->AuditConsistency();
    if (!audit.clean()) {
      for (auto it = rel_undo.rbegin(); it != rel_undo.rend(); ++it) {
        if (it->existed) {
          master_->RestoreRelationship(it->old_state);
        } else {
          master_->EraseRelationshipTrusted(it->id);
        }
      }
      for (auto it = object_undo.rbegin(); it != object_undo.rend(); ++it) {
        if (it->existed) {
          master_->RestoreObject(it->old_state);
        } else {
          master_->EraseObjectTrusted(it->id);
        }
      }
      master_->RebuildIndexes();
      checkins_rejected_.fetch_add(1, std::memory_order_relaxed);
      CountCheckinRejected();
      // Locks are deliberately kept: the client can repair and retry.
      return Status::ConsistencyViolation(
          "check-in rejected: " + audit.violations.front().ToString() +
          (audit.size() > 1
               ? " (and " + std::to_string(audit.size() - 1) + " more)"
               : ""));
    }

    seq = next_commit_seq_++;
    // Publish before releasing the stripes: the next checkout winner's
    // snapshot already contains this commit.
    PublishSnapshotLocked();
  }

  // Success: release all locks held by this client and move its session
  // snapshot forward (read-your-writes).
  locks_.ReleaseAllOf(client);
  LocksHeldGauge()->Set(static_cast<std::int64_t>(locks_.num_held()));
  (void)RefreshSession(client);
  checkins_applied_.fetch_add(1, std::memory_order_relaxed);
  static obs::Counter* applied = obs::MetricsRegistry::Global().GetCounter(
      "multiuser.checkins.applied.total");
  applied->Increment();
  if (commit_seq != nullptr) *commit_seq = seq;
  return Status::OK();
}

}  // namespace seed::multiuser
