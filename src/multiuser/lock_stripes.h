// Striped write-lock table for the multiuser server.
//
// The lock *unit* is the paper's checkout granularity: the independent
// object subtree, identified by its root id. Each root hashes to one of a
// fixed set of stripes; every stripe carries its own mutex and its own
// root -> owner map, so checkouts and check-ins touching disjoint stripes
// never contend on a shared lock. Multi-stripe operations (a checkout of
// several roots) acquire their stripe mutexes in ascending stripe order —
// the classic total-order discipline — so overlapping stripe sets cannot
// deadlock, and acquisition is all-or-nothing: on any conflict nothing is
// taken and the caller sees kLockConflict.
//
// The stripe mutexes are leaf-level locks: no LockStripes method acquires
// anything else while holding one, so callers may invoke the single-stripe
// queries (IsLocked, OwnerOf, IsHeldBy) under their own coarser locks
// without ordering concerns.

#ifndef SEED_MULTIUSER_LOCK_STRIPES_H_
#define SEED_MULTIUSER_LOCK_STRIPES_H_

#include <cstddef>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/ids.h"
#include "common/result.h"
#include "common/thread_annotations.h"

namespace seed::multiuser {

class LockStripes {
 public:
  static constexpr size_t kDefaultStripes = 64;

  explicit LockStripes(size_t num_stripes = kDefaultStripes);

  LockStripes(const LockStripes&) = delete;
  LockStripes& operator=(const LockStripes&) = delete;

  /// Write-locks every root for `client`, all-or-nothing: if any root is
  /// owned by another client, nothing is acquired and kLockConflict names
  /// the first conflicting root. Roots the client already owns stay owned
  /// (re-entrant) and are not reported in `newly_acquired`.
  ///
  /// AcquireAll/Release lock a runtime-computed set of stripe mutexes;
  /// the analysis cannot follow locks held in a loop, so both opt out.
  /// The invariant it cannot see: StripeSetOf returns ascending
  /// deduplicated indices, every mutex in the set is locked in that order
  /// and unlocked before returning, and each `owners` map is only touched
  /// between its own stripe's Lock/Unlock pair.
  Status AcquireAll(ClientId client, const std::vector<ObjectId>& roots,
                    std::vector<ObjectId>* newly_acquired = nullptr)
      SEED_NO_THREAD_SAFETY_ANALYSIS;

  /// Releases exactly `roots`, all-or-nothing: every one must be held by
  /// `client`, otherwise kFailedPrecondition and nothing is released.
  Status Release(ClientId client, const std::vector<ObjectId>& roots)
      SEED_NO_THREAD_SAFETY_ANALYSIS;

  /// Releases everything `client` holds; returns the released roots
  /// (ascending). Used on check-in success and on disconnect.
  std::vector<ObjectId> ReleaseAllOf(ClientId client);

  bool IsLocked(ObjectId root) const;
  Result<ClientId> OwnerOf(ObjectId root) const;
  bool IsHeldBy(ClientId client, ObjectId root) const;

  /// All roots held by `client`, ascending.
  std::vector<ObjectId> LocksOf(ClientId client) const;

  /// Total roots currently locked, across all stripes.
  size_t num_held() const;

  size_t num_stripes() const { return stripes_.size(); }

  /// Which stripe a root maps to (deterministic; exposed for tests).
  size_t StripeOf(ObjectId root) const;

 private:
  struct Stripe {
    mutable common::Mutex mu;
    std::unordered_map<ObjectId, ClientId> owners SEED_GUARDED_BY(mu);
  };

  /// Ascending, deduplicated stripe indices covering `roots`.
  std::vector<size_t> StripeSetOf(const std::vector<ObjectId>& roots) const;

  /// Fixed at construction; Stripe is immovable (it owns a mutex), so the
  /// vector holds stable heap slots.
  std::vector<std::unique_ptr<Stripe>> stripes_;
};

}  // namespace seed::multiuser

#endif  // SEED_MULTIUSER_LOCK_STRIPES_H_
