#include "multiuser/client.h"

#include "common/macros.h"

#include <algorithm>

namespace seed::multiuser {

Result<std::unique_ptr<ClientSession>> ClientSession::Open(
    Server* server, std::string name) {
  SEED_ASSIGN_OR_RETURN(ClientId id, server->Connect(std::move(name)));
  SEED_ASSIGN_OR_RETURN(std::uint64_t stripe, server->IdStripeBase(id));
  return std::unique_ptr<ClientSession>(
      new ClientSession(server, id, stripe));
}

ClientSession::ClientSession(Server* server, ClientId id,
                             std::uint64_t stripe_base)
    : server_(server),
      id_(id),
      stripe_base_(stripe_base),
      object_id_watermark_(stripe_base),
      relationship_id_watermark_(stripe_base) {
  ResetLocal();
}

ClientSession::~ClientSession() { (void)server_->Disconnect(id_); }

void ClientSession::CaptureWatermarks() {
  // Called only at points where the generators sit inside this client's
  // stripe (imports immediately re-pin them, see ImportBundle). Remember
  // how far the workspace got: those ids may already live in the master
  // from an earlier check-in and must never be reissued.
  if (local_ == nullptr) return;
  object_id_watermark_ =
      std::max(object_id_watermark_, local_->object_ids().next_raw() - 1);
  relationship_id_watermark_ =
      std::max(relationship_id_watermark_,
               local_->relationship_ids().next_raw() - 1);
}

void ClientSession::ResetLocal() {
  CaptureWatermarks();
  local_ = std::make_unique<core::Database>(server_->schema());
  // New local items draw ids from the client's private stripe, above every
  // id this client ever used.
  local_->object_ids().ResetTo(object_id_watermark_ + 1);
  local_->relationship_ids().ResetTo(relationship_id_watermark_ + 1);
  local_versions_ = std::make_unique<version::VersionManager>(local_.get());
}

void ClientSession::ImportBundle(const CheckoutBundle& bundle) {
  // Capture before the restores below bump the generators with foreign
  // (other-stripe) item ids.
  CaptureWatermarks();
  for (const core::ObjectItem& obj : bundle.objects) {
    local_->RestoreObject(obj);
  }
  for (const core::RelationshipItem& rel : bundle.relationships) {
    local_->RestoreRelationship(rel);
  }
  local_->RebuildIndexes();
  // Restore/RebuildIndexes reserved through every imported id (possibly in
  // another client's stripe); pin the generators back into this client's
  // range, above everything it ever issued.
  local_->object_ids().ResetTo(object_id_watermark_ + 1);
  local_->relationship_ids().ResetTo(relationship_id_watermark_ + 1);
  // Imported items are unchanged as far as the next check-in is concerned.
  local_->ClearChangeTracking();
}

Status ClientSession::CheckoutByName(const std::vector<std::string>& names) {
  std::vector<ObjectId> roots;
  for (const std::string& name : names) {
    // ResolveRoot reads the master under the server's write serialization
    // — never the session snapshot, which may predate the root.
    SEED_ASSIGN_OR_RETURN(ObjectId id, server_->ResolveRoot(name));
    roots.push_back(id);
  }
  return Checkout(roots);
}

Status ClientSession::Checkout(const std::vector<ObjectId>& roots) {
  SEED_ASSIGN_OR_RETURN(CheckoutBundle bundle,
                        server_->Checkout(id_, roots));
  ImportBundle(bundle);
  return Status::OK();
}

Status ClientSession::Checkin(std::uint64_t* commit_seq,
                              CheckinBundle* shipped) {
  CheckinBundle bundle;
  const auto& objects = local_->objects_raw();
  for (ObjectId oid : local_->changed_objects()) {
    auto it = objects.find(oid);
    if (it != objects.end()) bundle.objects.push_back(it->second);
  }
  const auto& rels = local_->relationships_raw();
  for (RelationshipId rid : local_->changed_relationships()) {
    auto it = rels.find(rid);
    if (it != rels.end()) bundle.relationships.push_back(it->second);
  }
  SEED_RETURN_IF_ERROR(server_->Checkin(id_, bundle, commit_seq));
  if (shipped != nullptr) *shipped = bundle;
  ResetLocal();
  return Status::OK();
}

Status ClientSession::Abandon() {
  SEED_RETURN_IF_ERROR(
      server_->ReleaseLocks(id_, server_->LocksOf(id_)));
  ResetLocal();
  return Status::OK();
}

}  // namespace seed::multiuser
