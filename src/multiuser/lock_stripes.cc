#include "multiuser/lock_stripes.h"

#include <algorithm>
#include <string>

namespace seed::multiuser {

LockStripes::LockStripes(size_t num_stripes) {
  if (num_stripes == 0) num_stripes = 1;
  stripes_.reserve(num_stripes);
  for (size_t i = 0; i < num_stripes; ++i) {
    stripes_.push_back(std::make_unique<Stripe>());
  }
}

size_t LockStripes::StripeOf(ObjectId root) const {
  // Fibonacci hashing: consecutive root ids (the common allocation
  // pattern) land on different stripes instead of clustering.
  return static_cast<size_t>(root.raw() * 0x9E3779B97F4A7C15ull) %
         stripes_.size();
}

std::vector<size_t> LockStripes::StripeSetOf(
    const std::vector<ObjectId>& roots) const {
  std::vector<size_t> indices;
  indices.reserve(roots.size());
  for (ObjectId root : roots) indices.push_back(StripeOf(root));
  std::sort(indices.begin(), indices.end());
  indices.erase(std::unique(indices.begin(), indices.end()), indices.end());
  return indices;
}

Status LockStripes::AcquireAll(ClientId client,
                               const std::vector<ObjectId>& roots,
                               std::vector<ObjectId>* newly_acquired) {
  if (newly_acquired != nullptr) newly_acquired->clear();
  std::vector<size_t> indices = StripeSetOf(roots);
  for (size_t i : indices) stripes_[i]->mu.Lock();
  Status result = Status::OK();
  for (ObjectId root : roots) {
    const auto& owners = stripes_[StripeOf(root)]->owners;
    auto it = owners.find(root);
    if (it != owners.end() && it->second != client) {
      result = Status::LockConflict(
          "object " + std::to_string(root.raw()) +
          " is write-locked by client " + std::to_string(it->second.raw()));
      break;
    }
  }
  if (result.ok()) {
    for (ObjectId root : roots) {
      auto& owners = stripes_[StripeOf(root)]->owners;
      if (owners.emplace(root, client).second && newly_acquired != nullptr) {
        newly_acquired->push_back(root);
      }
    }
  }
  for (auto it = indices.rbegin(); it != indices.rend(); ++it) {
    stripes_[*it]->mu.Unlock();
  }
  return result;
}

Status LockStripes::Release(ClientId client,
                            const std::vector<ObjectId>& roots) {
  std::vector<size_t> indices = StripeSetOf(roots);
  for (size_t i : indices) stripes_[i]->mu.Lock();
  Status result = Status::OK();
  for (ObjectId root : roots) {
    const auto& owners = stripes_[StripeOf(root)]->owners;
    auto it = owners.find(root);
    if (it == owners.end() || it->second != client) {
      result = Status::FailedPrecondition(
          "client does not hold the lock on object " +
          std::to_string(root.raw()));
      break;
    }
  }
  if (result.ok()) {
    for (ObjectId root : roots) stripes_[StripeOf(root)]->owners.erase(root);
  }
  for (auto it = indices.rbegin(); it != indices.rend(); ++it) {
    stripes_[*it]->mu.Unlock();
  }
  return result;
}

std::vector<ObjectId> LockStripes::ReleaseAllOf(ClientId client) {
  // One stripe at a time: no cross-stripe atomicity is needed to drop
  // locks, and single-stripe critical sections keep writers out of each
  // other's way.
  std::vector<ObjectId> released;
  for (const auto& stripe : stripes_) {
    common::MutexLock lock(stripe->mu);
    for (auto it = stripe->owners.begin(); it != stripe->owners.end();) {
      if (it->second == client) {
        released.push_back(it->first);
        it = stripe->owners.erase(it);
      } else {
        ++it;
      }
    }
  }
  std::sort(released.begin(), released.end());
  return released;
}

bool LockStripes::IsLocked(ObjectId root) const {
  const Stripe& stripe = *stripes_[StripeOf(root)];
  common::MutexLock lock(stripe.mu);
  return stripe.owners.find(root) != stripe.owners.end();
}

Result<ClientId> LockStripes::OwnerOf(ObjectId root) const {
  const Stripe& stripe = *stripes_[StripeOf(root)];
  common::MutexLock lock(stripe.mu);
  auto it = stripe.owners.find(root);
  if (it == stripe.owners.end()) {
    return Status::NotFound("no lock on object " + std::to_string(root.raw()));
  }
  return it->second;
}

bool LockStripes::IsHeldBy(ClientId client, ObjectId root) const {
  const Stripe& stripe = *stripes_[StripeOf(root)];
  common::MutexLock lock(stripe.mu);
  auto it = stripe.owners.find(root);
  return it != stripe.owners.end() && it->second == client;
}

std::vector<ObjectId> LockStripes::LocksOf(ClientId client) const {
  std::vector<ObjectId> out;
  for (const auto& stripe : stripes_) {
    common::MutexLock lock(stripe->mu);
    for (const auto& [root, owner] : stripe->owners) {
      if (owner == client) out.push_back(root);
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

size_t LockStripes::num_held() const {
  size_t total = 0;
  for (const auto& stripe : stripes_) {
    common::MutexLock lock(stripe->mu);
    total += stripe->owners.size();
  }
  return total;
}

}  // namespace seed::multiuser
