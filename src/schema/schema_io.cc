#include "schema/schema_io.h"

#include "common/macros.h"
#include "schema/schema_builder.h"

namespace seed::schema {

namespace {
constexpr std::uint32_t kSchemaFormatVersion = 1;

void EncodeCardinality(const Cardinality& c, Encoder* enc) {
  enc->PutU32(c.min);
  enc->PutU32(c.max);
}

Result<Cardinality> DecodeCardinality(Decoder* dec) {
  Cardinality c;
  SEED_ASSIGN_OR_RETURN(c.min, dec->GetU32());
  SEED_ASSIGN_OR_RETURN(c.max, dec->GetU32());
  return c;
}
}  // namespace

void SchemaCodec::Encode(const Schema& schema, Encoder* enc) {
  enc->PutU32(kSchemaFormatVersion);
  enc->PutString(schema.name_);
  enc->PutU64(schema.version_);

  enc->PutVarint(schema.classes_.size());
  for (const ObjectClass& c : schema.classes_) {
    enc->PutU64(c.id.raw());
    enc->PutString(c.name);
    enc->PutU8(static_cast<std::uint8_t>(c.owner.kind));
    enc->PutU64(c.owner.id_raw);
    EncodeCardinality(c.cardinality, enc);
    enc->PutU8(static_cast<std::uint8_t>(c.value_type));
    enc->PutVarint(c.enum_values.size());
    for (const std::string& v : c.enum_values) enc->PutString(v);
    enc->PutU64(c.generalizes_into.raw());
    enc->PutBool(c.covering);
  }

  enc->PutVarint(schema.associations_.size());
  for (const Association& a : schema.associations_) {
    enc->PutU64(a.id.raw());
    enc->PutString(a.name);
    for (const Role& r : a.roles) {
      enc->PutString(r.name);
      enc->PutU64(r.target.raw());
      EncodeCardinality(r.cardinality, enc);
    }
    enc->PutBool(a.acyclic);
    enc->PutU64(a.generalizes_into.raw());
    enc->PutBool(a.covering);
  }
}

Result<SchemaPtr> SchemaCodec::Decode(Decoder* dec) {
  SEED_ASSIGN_OR_RETURN(std::uint32_t format, dec->GetU32());
  if (format != kSchemaFormatVersion) {
    return Status::Corruption("unknown schema format version " +
                              std::to_string(format));
  }
  SchemaBuilder builder("");
  SEED_ASSIGN_OR_RETURN(builder.name_, dec->GetString());
  SEED_ASSIGN_OR_RETURN(builder.version_, dec->GetU64());

  SEED_ASSIGN_OR_RETURN(std::uint64_t num_classes, dec->GetVarint());
  builder.classes_.reserve(num_classes);
  for (std::uint64_t i = 0; i < num_classes; ++i) {
    ObjectClass c;
    SEED_ASSIGN_OR_RETURN(std::uint64_t id_raw, dec->GetU64());
    c.id = ClassId(id_raw);
    if (c.id.raw() != i + 1) {
      return Status::Corruption("non-dense class id in schema stream");
    }
    SEED_ASSIGN_OR_RETURN(c.name, dec->GetString());
    SEED_ASSIGN_OR_RETURN(std::uint8_t owner_kind, dec->GetU8());
    if (owner_kind > static_cast<std::uint8_t>(OwnerKind::kAssociation)) {
      return Status::Corruption("bad owner kind in schema stream");
    }
    c.owner.kind = static_cast<OwnerKind>(owner_kind);
    SEED_ASSIGN_OR_RETURN(c.owner.id_raw, dec->GetU64());
    SEED_ASSIGN_OR_RETURN(c.cardinality, DecodeCardinality(dec));
    SEED_ASSIGN_OR_RETURN(std::uint8_t vt, dec->GetU8());
    if (vt > static_cast<std::uint8_t>(ValueType::kEnum)) {
      return Status::Corruption("bad value type in schema stream");
    }
    c.value_type = static_cast<ValueType>(vt);
    SEED_ASSIGN_OR_RETURN(std::uint64_t num_enum, dec->GetVarint());
    for (std::uint64_t j = 0; j < num_enum; ++j) {
      SEED_ASSIGN_OR_RETURN(std::string v, dec->GetString());
      c.enum_values.push_back(std::move(v));
    }
    SEED_ASSIGN_OR_RETURN(std::uint64_t gen_raw, dec->GetU64());
    c.generalizes_into = ClassId(gen_raw);
    SEED_ASSIGN_OR_RETURN(c.covering, dec->GetBool());
    builder.classes_.push_back(std::move(c));
  }

  SEED_ASSIGN_OR_RETURN(std::uint64_t num_assocs, dec->GetVarint());
  builder.associations_.reserve(num_assocs);
  for (std::uint64_t i = 0; i < num_assocs; ++i) {
    Association a;
    SEED_ASSIGN_OR_RETURN(std::uint64_t id_raw, dec->GetU64());
    a.id = AssociationId(id_raw);
    if (a.id.raw() != i + 1) {
      return Status::Corruption("non-dense association id in schema stream");
    }
    SEED_ASSIGN_OR_RETURN(a.name, dec->GetString());
    for (Role& r : a.roles) {
      SEED_ASSIGN_OR_RETURN(r.name, dec->GetString());
      SEED_ASSIGN_OR_RETURN(std::uint64_t target_raw, dec->GetU64());
      r.target = ClassId(target_raw);
      SEED_ASSIGN_OR_RETURN(r.cardinality, DecodeCardinality(dec));
    }
    SEED_ASSIGN_OR_RETURN(a.acyclic, dec->GetBool());
    SEED_ASSIGN_OR_RETURN(std::uint64_t gen_raw, dec->GetU64());
    a.generalizes_into = AssociationId(gen_raw);
    SEED_ASSIGN_OR_RETURN(a.covering, dec->GetBool());
    builder.associations_.push_back(std::move(a));
  }

  // Build() re-validates, so corrupt streams cannot produce a bad schema.
  return builder.Build();
}

}  // namespace seed::schema
