// Schema elements: object classes and associations (relationship classes).
//
// Two orthogonal hierarchies exist over classes:
//  * the *structural* hierarchy: a dependent class belongs to an owner
//    (a class or an association) under a role name with a cardinality —
//    paper Fig. 2: `Data.Text` with cardinality 0..16, `Data.Text.Body`;
//  * the *generalization* hierarchy ("is-a"): a class may specialize one
//    more general class — paper Fig. 3: `Thing` ⊒ `Data` ⊒ `OutputData`.
// Associations participate in generalization too (`Access` ⊒ `Read`).

#ifndef SEED_SCHEMA_ELEMENTS_H_
#define SEED_SCHEMA_ELEMENTS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/ids.h"
#include "schema/types.h"

namespace seed::schema {

/// Who structurally owns a dependent class: nobody (independent class),
/// an object class, or an association (paper Fig. 3 hangs `NumberOfWrites`
/// and `ErrorHandling` off the `Write` association).
enum class OwnerKind : std::uint8_t { kNone = 0, kClass = 1, kAssociation = 2 };

struct StructuralOwner {
  OwnerKind kind = OwnerKind::kNone;
  std::uint64_t id_raw = 0;  // ClassId or AssociationId raw value

  static StructuralOwner None() { return {}; }
  static StructuralOwner OfClass(ClassId c) {
    return {OwnerKind::kClass, c.raw()};
  }
  static StructuralOwner OfAssociation(AssociationId a) {
    return {OwnerKind::kAssociation, a.raw()};
  }

  bool is_none() const { return kind == OwnerKind::kNone; }
  ClassId class_id() const { return ClassId(id_raw); }
  AssociationId association_id() const { return AssociationId(id_raw); }

  bool operator==(const StructuralOwner&) const = default;
};

/// An object class. Independent classes sit at top level; dependent classes
/// have a structural owner and a role name (their instances are sub-objects).
struct ObjectClass {
  ClassId id;
  /// Top-level name for independent classes; role name within the owner for
  /// dependent classes (`Text` in `Data.Text`).
  std::string name;

  StructuralOwner owner;
  /// How many sub-objects of this class one owner instance may/must have.
  /// Meaningless (0..*) for independent classes.
  Cardinality cardinality = Cardinality::Any();

  /// Type of the value instances carry; kNone for pure structure nodes.
  ValueType value_type = ValueType::kNone;
  /// Allowed identifiers when value_type == kEnum.
  std::vector<std::string> enum_values;

  /// Generalization parent ("is-a"); invalid id when not specialized.
  ClassId generalizes_into;
  /// Covering condition: every instance must *finally* live in a proper
  /// specialization of this class (completeness information).
  bool covering = false;

  bool is_dependent() const { return !owner.is_none(); }
  bool is_specialized() const { return generalizes_into.valid(); }

  /// Dotted schema path, filled by the Schema on freeze ("Data.Text.Body").
  std::string full_name;
};

/// One end of a binary association.
struct Role {
  /// Role name, e.g. `from` / `by` (paper Fig. 2).
  std::string name;
  /// Class whose instances may fill this role (instances of its
  /// specializations qualify too).
  ClassId target;
  /// Participation bounds for a single target instance: how many
  /// relationships of this association (or its specializations) one object
  /// may (max: consistency) / must (min: completeness) take part in.
  Cardinality cardinality = Cardinality::Any();
};

/// A binary association (relationship class), e.g. `Read(from: Data,
/// by: Action)`.
struct Association {
  AssociationId id;
  std::string name;
  /// Exactly two roles; specializations correspond to the general
  /// association's roles positionally.
  Role roles[2];

  /// ACYCLIC attribute: the directed graph over objects formed by
  /// relationships of this association (and its specializations), read as
  /// role[0]-object -> role[1]-object, must contain no cycle
  /// (paper Fig. 2: `Contained ... ACYCLIC` imposes a tree on `Action`).
  bool acyclic = false;

  /// Generalization parent association; invalid when not specialized.
  AssociationId generalizes_into;
  /// Covering condition on the generalization (completeness information).
  bool covering = false;

  bool is_specialized() const { return generalizes_into.valid(); }

  /// Index of the role named `role_name`, or -1.
  int RoleIndex(const std::string& role_name) const {
    if (roles[0].name == role_name) return 0;
    if (roles[1].name == role_name) return 1;
    return -1;
  }
};

}  // namespace seed::schema

#endif  // SEED_SCHEMA_ELEMENTS_H_
