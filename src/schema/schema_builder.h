// SchemaBuilder: records schema elements, validates the whole schema at
// Build() time, and freezes it into an immutable Schema.
//
// Ids are assigned in declaration order and remain stable under evolution:
// Evolve(base) starts from a copy of `base` with version + 1 and only
// appends (this implementation's schema evolution is additive; the paper
// versions schemas but does not specify element deletion).

#ifndef SEED_SCHEMA_SCHEMA_BUILDER_H_
#define SEED_SCHEMA_SCHEMA_BUILDER_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "schema/schema.h"

namespace seed::schema {

class SchemaBuilder {
 public:
  explicit SchemaBuilder(std::string schema_name);

  /// Starts from an existing schema (its elements keep their ids); the
  /// resulting schema has version() == base.version() + 1.
  static SchemaBuilder Evolve(const Schema& base);

  // --- Classes -------------------------------------------------------------

  /// Adds an independent (top-level) class.
  ClassId AddIndependentClass(std::string name,
                              ValueType value_type = ValueType::kNone);

  /// Adds a dependent class under `owner` with role `name`: each owner
  /// instance may have `cardinality` sub-objects of this class.
  ClassId AddDependentClass(ClassId owner, std::string name,
                            Cardinality cardinality,
                            ValueType value_type = ValueType::kNone);

  /// Adds a dependent class under an association (relationship attribute,
  /// paper Fig. 3: `Write.NumberOfWrites`).
  ClassId AddDependentClass(AssociationId owner, std::string name,
                            Cardinality cardinality,
                            ValueType value_type = ValueType::kNone);

  /// Declares the allowed identifiers of a kEnum class.
  SchemaBuilder& SetEnumValues(ClassId cls, std::vector<std::string> values);

  /// Declares `sub` to be a specialization of `super` ("is-a").
  SchemaBuilder& SetGeneralization(ClassId sub, ClassId super);

  /// Marks the generalization rooted at `cls` as covering: every instance
  /// must finally be re-classified into a proper specialization
  /// (completeness information).
  SchemaBuilder& SetCovering(ClassId cls, bool covering = true);

  // --- Associations ----------------------------------------------------------

  /// Adds a binary association. `acyclic` imposes the ACYCLIC condition on
  /// the graph role0-object -> role1-object.
  AssociationId AddAssociation(std::string name, Role role0, Role role1,
                               bool acyclic = false);

  SchemaBuilder& SetGeneralization(AssociationId sub, AssociationId super);
  SchemaBuilder& SetCovering(AssociationId assoc, bool covering = true);

  // --- Freeze ----------------------------------------------------------------

  /// Validates everything and returns the immutable schema.
  /// On failure, the status message lists the first violated rule.
  Result<SchemaPtr> Build() const;

 private:
  friend class SchemaCodec;

  Status Validate(const Schema& schema) const;

  std::string name_;
  std::uint64_t version_ = 1;
  std::vector<ObjectClass> classes_;
  std::vector<Association> associations_;
};

}  // namespace seed::schema

#endif  // SEED_SCHEMA_SCHEMA_BUILDER_H_
