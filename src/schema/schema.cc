#include "schema/schema.h"

#include "common/macros.h"
#include "common/strings.h"

namespace seed::schema {

namespace {
const std::vector<ClassId> kNoClasses;
const std::vector<AssociationId> kNoAssociations;
}  // namespace

Result<const ObjectClass*> Schema::GetClass(ClassId id) const {
  if (!id.valid() || id.raw() > classes_.size()) {
    return Status::NotFound("class id " + std::to_string(id.raw()));
  }
  return &classes_[id.raw() - 1];
}

Result<const Association*> Schema::GetAssociation(AssociationId id) const {
  if (!id.valid() || id.raw() > associations_.size()) {
    return Status::NotFound("association id " + std::to_string(id.raw()));
  }
  return &associations_[id.raw() - 1];
}

Result<ClassId> Schema::FindIndependentClass(std::string_view name) const {
  auto it = independent_by_name_.find(std::string(name));
  if (it == independent_by_name_.end()) {
    return Status::NotFound("no independent class '" + std::string(name) +
                            "'");
  }
  return it->second;
}

Result<AssociationId> Schema::FindAssociation(std::string_view name) const {
  auto it = association_by_name_.find(std::string(name));
  if (it == association_by_name_.end()) {
    return Status::NotFound("no association '" + std::string(name) + "'");
  }
  return it->second;
}

Result<ClassId> Schema::FindClassByPath(std::string_view path) const {
  SEED_ASSIGN_OR_RETURN(auto segments, strings::ParsePath(path));
  for (const PathSegment& seg : segments) {
    if (seg.index.has_value()) {
      return Status::InvalidArgument("schema path '" + std::string(path) +
                                     "' must not contain indexes");
    }
  }
  size_t next = 1;
  ClassId cur;
  auto cls = FindIndependentClass(segments[0].name);
  if (cls.ok()) {
    cur = *cls;
  } else {
    // First segment may name an association owning dependent classes.
    auto assoc = FindAssociation(segments[0].name);
    if (!assoc.ok()) {
      return Status::NotFound("path root '" + segments[0].name +
                              "' is neither a class nor an association");
    }
    if (segments.size() < 2) {
      return Status::InvalidArgument(
          "path '" + std::string(path) +
          "' names an association, not a class");
    }
    SEED_ASSIGN_OR_RETURN(cur,
                          ResolveSubObjectRole(*assoc, segments[1].name));
    next = 2;
  }
  for (size_t i = next; i < segments.size(); ++i) {
    SEED_ASSIGN_OR_RETURN(cur, ResolveSubObjectRole(cur, segments[i].name));
  }
  return cur;
}

std::vector<ClassId> Schema::AllClassIds() const {
  std::vector<ClassId> out;
  out.reserve(classes_.size());
  for (const auto& c : classes_) out.push_back(c.id);
  return out;
}

std::vector<AssociationId> Schema::AllAssociationIds() const {
  std::vector<AssociationId> out;
  out.reserve(associations_.size());
  for (const auto& a : associations_) out.push_back(a.id);
  return out;
}

const std::vector<ClassId>& Schema::DependentClassesOf(
    const StructuralOwner& owner) const {
  auto it = dependents_.find(OwnerKey(owner));
  return it == dependents_.end() ? kNoClasses : it->second;
}

std::vector<ClassId> Schema::EffectiveDependentClassesOf(ClassId cls) const {
  std::vector<ClassId> out;
  for (ClassId c : GeneralizationChain(cls)) {
    const auto& declared = DependentClassesOf(StructuralOwner::OfClass(c));
    out.insert(out.end(), declared.begin(), declared.end());
  }
  return out;
}

Result<ClassId> Schema::ResolveSubObjectRole(ClassId cls,
                                             std::string_view role) const {
  for (ClassId c : GeneralizationChain(cls)) {
    for (ClassId dep : DependentClassesOf(StructuralOwner::OfClass(c))) {
      const ObjectClass& d = classes_[dep.raw() - 1];
      if (d.name == role) return dep;
    }
  }
  auto cls_info = GetClass(cls);
  return Status::NotFound(
      "class '" + (cls_info.ok() ? (*cls_info)->full_name : "?") +
      "' has no sub-object role '" + std::string(role) + "'");
}

Result<ClassId> Schema::ResolveSubObjectRole(AssociationId assoc,
                                             std::string_view role) const {
  for (AssociationId a : GeneralizationChain(assoc)) {
    for (ClassId dep :
         DependentClassesOf(StructuralOwner::OfAssociation(a))) {
      const ObjectClass& d = classes_[dep.raw() - 1];
      if (d.name == role) return dep;
    }
  }
  auto info = GetAssociation(assoc);
  return Status::NotFound("association '" +
                          (info.ok() ? (*info)->name : "?") +
                          "' has no sub-object role '" + std::string(role) +
                          "'");
}

bool Schema::IsSameOrSpecializationOf(ClassId sub, ClassId super) const {
  ClassId cur = sub;
  while (cur.valid()) {
    if (cur == super) return true;
    if (cur.raw() > classes_.size()) return false;
    cur = classes_[cur.raw() - 1].generalizes_into;
  }
  return false;
}

bool Schema::IsSameOrSpecializationOf(AssociationId sub,
                                      AssociationId super) const {
  AssociationId cur = sub;
  while (cur.valid()) {
    if (cur == super) return true;
    if (cur.raw() > associations_.size()) return false;
    cur = associations_[cur.raw() - 1].generalizes_into;
  }
  return false;
}

std::vector<ClassId> Schema::GeneralizationChain(ClassId cls) const {
  std::vector<ClassId> out;
  ClassId cur = cls;
  while (cur.valid() && cur.raw() <= classes_.size()) {
    out.push_back(cur);
    cur = classes_[cur.raw() - 1].generalizes_into;
  }
  return out;
}

std::vector<AssociationId> Schema::GeneralizationChain(
    AssociationId assoc) const {
  std::vector<AssociationId> out;
  AssociationId cur = assoc;
  while (cur.valid() && cur.raw() <= associations_.size()) {
    out.push_back(cur);
    cur = associations_[cur.raw() - 1].generalizes_into;
  }
  return out;
}

const std::vector<ClassId>& Schema::SpecializationsOf(ClassId cls) const {
  auto it = class_specializations_.find(cls.raw());
  return it == class_specializations_.end() ? kNoClasses : it->second;
}

const std::vector<AssociationId>& Schema::SpecializationsOf(
    AssociationId assoc) const {
  auto it = association_specializations_.find(assoc.raw());
  return it == association_specializations_.end() ? kNoAssociations
                                                  : it->second;
}

std::vector<AssociationId> Schema::AssociationFamily(
    AssociationId assoc) const {
  std::vector<AssociationId> out{assoc};
  for (size_t i = 0; i < out.size(); ++i) {
    const auto& kids = SpecializationsOf(out[i]);
    out.insert(out.end(), kids.begin(), kids.end());
  }
  return out;
}

std::vector<ClassId> Schema::ClassFamily(ClassId cls) const {
  std::vector<ClassId> out{cls};
  for (size_t i = 0; i < out.size(); ++i) {
    const auto& kids = SpecializationsOf(out[i]);
    out.insert(out.end(), kids.begin(), kids.end());
  }
  return out;
}

bool Schema::OnSameGeneralizationPath(ClassId a, ClassId b) const {
  return IsSameOrSpecializationOf(a, b) || IsSameOrSpecializationOf(b, a);
}

bool Schema::OnSameGeneralizationPath(AssociationId a, AssociationId b) const {
  return IsSameOrSpecializationOf(a, b) || IsSameOrSpecializationOf(b, a);
}

void Schema::BuildIndexes() {
  independent_by_name_.clear();
  association_by_name_.clear();
  dependents_.clear();
  class_specializations_.clear();
  association_specializations_.clear();

  for (const ObjectClass& c : classes_) {
    if (!c.is_dependent()) independent_by_name_[c.name] = c.id;
    if (c.is_dependent()) {
      dependents_[OwnerKey(c.owner)].push_back(c.id);
    }
    if (c.is_specialized()) {
      class_specializations_[c.generalizes_into.raw()].push_back(c.id);
    }
  }
  for (const Association& a : associations_) {
    association_by_name_[a.name] = a.id;
    if (a.is_specialized()) {
      association_specializations_[a.generalizes_into.raw()].push_back(a.id);
    }
  }
  // Full names: independent classes are their own roots; dependent classes
  // prefix their owner's full name; association-owned classes prefix the
  // association name. Owners always have smaller ids than their dependents
  // (builder invariant), so one pass in id order suffices.
  for (ObjectClass& c : classes_) {
    if (!c.is_dependent()) {
      c.full_name = c.name;
    } else if (c.owner.kind == OwnerKind::kClass) {
      c.full_name =
          classes_[c.owner.class_id().raw() - 1].full_name + "." + c.name;
    } else {
      c.full_name =
          associations_[c.owner.association_id().raw() - 1].name + "." +
          c.name;
    }
  }
}

}  // namespace seed::schema
