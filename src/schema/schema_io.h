// Schema (de)serialization. Decoded schemas are re-validated through the
// SchemaBuilder, so a corrupted byte stream can never yield an inconsistent
// schema object.

#ifndef SEED_SCHEMA_SCHEMA_IO_H_
#define SEED_SCHEMA_SCHEMA_IO_H_

#include "common/coding.h"
#include "common/result.h"
#include "schema/schema.h"

namespace seed::schema {

class SchemaCodec {
 public:
  static void Encode(const Schema& schema, Encoder* enc);
  static Result<SchemaPtr> Decode(Decoder* dec);
};

}  // namespace seed::schema

#endif  // SEED_SCHEMA_SCHEMA_IO_H_
