// Basic schema vocabulary: value types, cardinalities, dates.

#ifndef SEED_SCHEMA_TYPES_H_
#define SEED_SCHEMA_TYPES_H_

#include <cstdint>
#include <limits>
#include <string>
#include <string_view>

#include "common/result.h"

namespace seed::schema {

/// Primitive types a leaf class's instances may carry as values.
/// (Paper Fig. 2: `Contents STRING`; Fig. 3: `Revised DATE`,
/// `ErrorHandling (abort, repeat)` — the latter is an enumeration.)
enum class ValueType : std::uint8_t {
  kNone = 0,  // instances carry no value
  kString = 1,
  kInt = 2,
  kReal = 3,
  kBool = 4,
  kDate = 5,
  kEnum = 6,  // one of a fixed identifier list declared on the class
};

std::string_view ValueTypeToString(ValueType t);

/// Calendar date (paper Fig. 3 attaches a `Revised DATE` to `Thing`).
struct Date {
  std::int32_t year = 1970;
  std::uint8_t month = 1;  // 1..12
  std::uint8_t day = 1;    // 1..31

  static Result<Date> Make(std::int32_t year, std::uint8_t month,
                           std::uint8_t day);

  bool operator==(const Date&) const = default;
  auto operator<=>(const Date&) const = default;

  /// ISO "YYYY-MM-DD".
  std::string ToString() const;
  static Result<Date> Parse(std::string_view s);
};

/// Cardinality range `min..max` with `*` for unlimited (paper notation
/// "n..m, * = unlimited"). Maximum cardinalities are *consistency*
/// information (checked on every update); minimum cardinalities are
/// *completeness* information (checked only by explicit operations).
struct Cardinality {
  static constexpr std::uint32_t kUnlimited =
      std::numeric_limits<std::uint32_t>::max();

  std::uint32_t min = 0;
  std::uint32_t max = kUnlimited;

  constexpr Cardinality() = default;
  constexpr Cardinality(std::uint32_t min_, std::uint32_t max_)
      : min(min_), max(max_) {}

  /// `min..*`
  static constexpr Cardinality AtLeast(std::uint32_t m) {
    return Cardinality(m, kUnlimited);
  }
  /// `0..*`
  static constexpr Cardinality Any() { return Cardinality(0, kUnlimited); }
  /// `n..n`
  static constexpr Cardinality Exactly(std::uint32_t n) {
    return Cardinality(n, n);
  }
  /// `0..1`
  static constexpr Cardinality Optional() { return Cardinality(0, 1); }
  /// `1..1`
  static constexpr Cardinality One() { return Cardinality(1, 1); }

  bool unlimited_max() const { return max == kUnlimited; }
  bool IsValid() const { return max == kUnlimited || min <= max; }

  bool operator==(const Cardinality&) const = default;

  /// "1..*", "0..16", ...
  std::string ToString() const;
};

}  // namespace seed::schema

#endif  // SEED_SCHEMA_TYPES_H_
