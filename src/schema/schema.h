// Immutable schema: the set of object classes and associations, with
// structural and generalization queries. Built by SchemaBuilder (which
// validates), then frozen. Schema evolution produces a *new* Schema with a
// higher version number (the paper requires schema versions so that old
// database versions stay interpretable).

#ifndef SEED_SCHEMA_SCHEMA_H_
#define SEED_SCHEMA_SCHEMA_H_

#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/ids.h"
#include "common/result.h"
#include "schema/elements.h"

namespace seed::schema {

class SchemaBuilder;

class Schema {
 public:
  /// Schema name (e.g. "MiniSpec") and monotonically increasing version.
  const std::string& name() const { return name_; }
  std::uint64_t version() const { return version_; }

  // --- Element lookup -----------------------------------------------------

  Result<const ObjectClass*> GetClass(ClassId id) const;
  Result<const Association*> GetAssociation(AssociationId id) const;

  /// Finds a top-level (independent) class by name.
  Result<ClassId> FindIndependentClass(std::string_view name) const;
  /// Finds an association by name.
  Result<AssociationId> FindAssociation(std::string_view name) const;

  /// Resolves a dotted schema path whose first segment is an independent
  /// class or association name and whose remaining segments are role names,
  /// e.g. "Data.Text.Body" or "Write.NumberOfWrites". Role resolution
  /// follows generalization (InputData.Text resolves via Data).
  Result<ClassId> FindClassByPath(std::string_view path) const;

  std::vector<ClassId> AllClassIds() const;
  std::vector<AssociationId> AllAssociationIds() const;
  size_t num_classes() const { return classes_.size(); }
  size_t num_associations() const { return associations_.size(); }

  // --- Structural queries -------------------------------------------------

  /// Dependent classes declared directly on `owner`.
  const std::vector<ClassId>& DependentClassesOf(
      const StructuralOwner& owner) const;

  /// Dependent classes available to instances of `cls`: declared on `cls`
  /// or on any of its generalization ancestors.
  std::vector<ClassId> EffectiveDependentClassesOf(ClassId cls) const;

  /// Resolves a role name on an object of class `cls` (searching the
  /// generalization chain); returns the dependent class.
  Result<ClassId> ResolveSubObjectRole(ClassId cls,
                                       std::string_view role) const;

  /// Resolves a role name on relationships of `assoc` (searching the
  /// association's generalization chain).
  Result<ClassId> ResolveSubObjectRole(AssociationId assoc,
                                       std::string_view role) const;

  // --- Generalization queries ----------------------------------------------

  bool IsSameOrSpecializationOf(ClassId sub, ClassId super) const;
  bool IsSameOrSpecializationOf(AssociationId sub, AssociationId super) const;

  /// `cls` first, then its generalization ancestors up to the root.
  std::vector<ClassId> GeneralizationChain(ClassId cls) const;
  std::vector<AssociationId> GeneralizationChain(AssociationId assoc) const;

  /// Direct specializations.
  const std::vector<ClassId>& SpecializationsOf(ClassId cls) const;
  const std::vector<AssociationId>& SpecializationsOf(
      AssociationId assoc) const;

  /// `assoc` plus all (transitive) specializations.
  std::vector<AssociationId> AssociationFamily(AssociationId assoc) const;
  /// `cls` plus all (transitive) specializations.
  std::vector<ClassId> ClassFamily(ClassId cls) const;

  /// True iff one of `a`, `b` is an ancestor of the other (or equal) in the
  /// generalization hierarchy — the legality condition for re-classification.
  bool OnSameGeneralizationPath(ClassId a, ClassId b) const;
  bool OnSameGeneralizationPath(AssociationId a, AssociationId b) const;

 private:
  friend class SchemaBuilder;
  friend class SchemaCodec;

  Schema() = default;

  /// Computes full names, owner->dependents and specialization indexes.
  void BuildIndexes();

  std::string name_;
  std::uint64_t version_ = 1;
  /// Dense storage; ClassId raw n lives at classes_[n-1].
  std::vector<ObjectClass> classes_;
  std::vector<Association> associations_;

  std::unordered_map<std::string, ClassId> independent_by_name_;
  std::unordered_map<std::string, AssociationId> association_by_name_;
  /// Owner (encoded as kind|id) -> dependent class ids, in declaration order.
  std::unordered_map<std::uint64_t, std::vector<ClassId>> dependents_;
  std::unordered_map<std::uint64_t, std::vector<ClassId>>
      class_specializations_;
  std::unordered_map<std::uint64_t, std::vector<AssociationId>>
      association_specializations_;

  static std::uint64_t OwnerKey(const StructuralOwner& owner) {
    return (static_cast<std::uint64_t>(owner.kind) << 56) | owner.id_raw;
  }
};

using SchemaPtr = std::shared_ptr<const Schema>;

}  // namespace seed::schema

#endif  // SEED_SCHEMA_SCHEMA_H_
