#include "schema/schema_builder.h"

#include <unordered_map>
#include <unordered_set>

#include "common/macros.h"
#include "common/strings.h"

namespace seed::schema {

SchemaBuilder::SchemaBuilder(std::string schema_name)
    : name_(std::move(schema_name)) {}

SchemaBuilder SchemaBuilder::Evolve(const Schema& base) {
  SchemaBuilder b(base.name());
  b.version_ = base.version() + 1;
  b.classes_ = base.classes_;
  b.associations_ = base.associations_;
  return b;
}

ClassId SchemaBuilder::AddIndependentClass(std::string name,
                                           ValueType value_type) {
  ObjectClass c;
  c.id = ClassId(classes_.size() + 1);
  c.name = std::move(name);
  c.owner = StructuralOwner::None();
  c.value_type = value_type;
  classes_.push_back(std::move(c));
  return classes_.back().id;
}

ClassId SchemaBuilder::AddDependentClass(ClassId owner, std::string name,
                                         Cardinality cardinality,
                                         ValueType value_type) {
  ObjectClass c;
  c.id = ClassId(classes_.size() + 1);
  c.name = std::move(name);
  c.owner = StructuralOwner::OfClass(owner);
  c.cardinality = cardinality;
  c.value_type = value_type;
  classes_.push_back(std::move(c));
  return classes_.back().id;
}

ClassId SchemaBuilder::AddDependentClass(AssociationId owner,
                                         std::string name,
                                         Cardinality cardinality,
                                         ValueType value_type) {
  ObjectClass c;
  c.id = ClassId(classes_.size() + 1);
  c.name = std::move(name);
  c.owner = StructuralOwner::OfAssociation(owner);
  c.cardinality = cardinality;
  c.value_type = value_type;
  classes_.push_back(std::move(c));
  return classes_.back().id;
}

SchemaBuilder& SchemaBuilder::SetEnumValues(ClassId cls,
                                            std::vector<std::string> values) {
  if (cls.valid() && cls.raw() <= classes_.size()) {
    classes_[cls.raw() - 1].enum_values = std::move(values);
  }
  return *this;
}

SchemaBuilder& SchemaBuilder::SetGeneralization(ClassId sub, ClassId super) {
  if (sub.valid() && sub.raw() <= classes_.size()) {
    classes_[sub.raw() - 1].generalizes_into = super;
  }
  return *this;
}

SchemaBuilder& SchemaBuilder::SetCovering(ClassId cls, bool covering) {
  if (cls.valid() && cls.raw() <= classes_.size()) {
    classes_[cls.raw() - 1].covering = covering;
  }
  return *this;
}

AssociationId SchemaBuilder::AddAssociation(std::string name, Role role0,
                                            Role role1, bool acyclic) {
  Association a;
  a.id = AssociationId(associations_.size() + 1);
  a.name = std::move(name);
  a.roles[0] = std::move(role0);
  a.roles[1] = std::move(role1);
  a.acyclic = acyclic;
  associations_.push_back(std::move(a));
  return associations_.back().id;
}

SchemaBuilder& SchemaBuilder::SetGeneralization(AssociationId sub,
                                                AssociationId super) {
  if (sub.valid() && sub.raw() <= associations_.size()) {
    associations_[sub.raw() - 1].generalizes_into = super;
  }
  return *this;
}

SchemaBuilder& SchemaBuilder::SetCovering(AssociationId assoc,
                                          bool covering) {
  if (assoc.valid() && assoc.raw() <= associations_.size()) {
    associations_[assoc.raw() - 1].covering = covering;
  }
  return *this;
}

Result<SchemaPtr> SchemaBuilder::Build() const {
  auto schema = std::shared_ptr<Schema>(new Schema());
  schema->name_ = name_;
  schema->version_ = version_;
  schema->classes_ = classes_;
  schema->associations_ = associations_;
  schema->BuildIndexes();
  SEED_RETURN_IF_ERROR(Validate(*schema));
  return SchemaPtr(schema);
}

namespace {

Status Fail(const std::string& msg) { return Status::InvalidArgument(msg); }

}  // namespace

Status SchemaBuilder::Validate(const Schema& schema) const {
  // -- Names ------------------------------------------------------------
  std::unordered_set<std::string> top_names;
  for (const ObjectClass& c : classes_) {
    if (!strings::IsIdentifier(c.name)) {
      return Fail("class name '" + c.name + "' is not an identifier");
    }
    if (!c.is_dependent() && !top_names.insert(c.name).second) {
      return Fail("duplicate top-level name '" + c.name + "'");
    }
  }
  for (const Association& a : associations_) {
    if (!strings::IsIdentifier(a.name)) {
      return Fail("association name '" + a.name + "' is not an identifier");
    }
    if (!top_names.insert(a.name).second) {
      return Fail("duplicate top-level name '" + a.name +
                  "' (classes and associations share one namespace)");
    }
  }

  // -- Structural ownership ----------------------------------------------
  for (const ObjectClass& c : classes_) {
    if (!c.is_dependent()) continue;
    if (c.owner.kind == OwnerKind::kClass) {
      ClassId owner = c.owner.class_id();
      if (!owner.valid() || owner.raw() > classes_.size()) {
        return Fail("class '" + c.name + "' has a dangling owner class");
      }
      if (owner.raw() >= c.id.raw()) {
        return Fail("class '" + c.name +
                    "' must be declared after its owner");
      }
    } else {
      AssociationId owner = c.owner.association_id();
      if (!owner.valid() || owner.raw() > associations_.size()) {
        return Fail("class '" + c.name +
                    "' has a dangling owner association");
      }
    }
    if (!c.cardinality.IsValid() || c.cardinality.max == 0) {
      return Fail("class '" + c.name + "' has invalid cardinality " +
                  c.cardinality.ToString());
    }
  }

  // -- Value types ---------------------------------------------------------
  for (const ObjectClass& c : classes_) {
    if (c.value_type == ValueType::kEnum) {
      if (c.enum_values.empty()) {
        return Fail("enum class '" + c.name + "' declares no values");
      }
      std::unordered_set<std::string> seen;
      for (const std::string& v : c.enum_values) {
        if (!strings::IsIdentifier(v)) {
          return Fail("enum value '" + v + "' of class '" + c.name +
                      "' is not an identifier");
        }
        if (!seen.insert(v).second) {
          return Fail("duplicate enum value '" + v + "' in class '" +
                      c.name + "'");
        }
      }
    } else if (!c.enum_values.empty()) {
      return Fail("class '" + c.name +
                  "' declares enum values but is not an enum");
    }
  }

  // -- Class generalization --------------------------------------------------
  for (const ObjectClass& c : classes_) {
    if (!c.is_specialized()) continue;
    ClassId super = c.generalizes_into;
    if (!super.valid() || super.raw() > classes_.size()) {
      return Fail("class '" + c.name +
                  "' specializes a non-existent class");
    }
    if (super == c.id) {
      return Fail("class '" + c.name + "' specializes itself");
    }
    const ObjectClass& s = classes_[super.raw() - 1];
    if (c.is_dependent() || s.is_dependent()) {
      return Fail("generalization between '" + s.name + "' and '" + c.name +
                  "' involves a dependent class; only independent classes "
                  "may be generalized");
    }
  }
  // Acyclicity of the generalization graph.
  for (const ObjectClass& c : classes_) {
    ClassId cur = c.generalizes_into;
    size_t steps = 0;
    while (cur.valid()) {
      if (cur == c.id) {
        return Fail("generalization cycle through class '" + c.name + "'");
      }
      if (++steps > classes_.size()) {
        return Fail("generalization cycle detected (classes)");
      }
      cur = classes_[cur.raw() - 1].generalizes_into;
    }
  }

  // -- Role-name collisions along generalization chains -----------------------
  for (const ObjectClass& c : classes_) {
    if (c.is_dependent()) continue;
    std::unordered_map<std::string, ClassId> roles;
    for (ClassId level : schema.GeneralizationChain(c.id)) {
      for (ClassId dep :
           schema.DependentClassesOf(StructuralOwner::OfClass(level))) {
        auto dep_cls = schema.GetClass(dep);
        const std::string& role = (*dep_cls)->name;
        auto [it, inserted] = roles.emplace(role, dep);
        if (!inserted && it->second != dep) {
          return Fail("role '" + role + "' of class '" + c.name +
                      "' collides with an inherited role");
        }
      }
    }
  }

  // -- Associations -----------------------------------------------------------
  for (const Association& a : associations_) {
    if (a.roles[0].name == a.roles[1].name) {
      return Fail("association '" + a.name + "' has two roles named '" +
                  a.roles[0].name + "'");
    }
    for (const Role& r : a.roles) {
      if (!strings::IsIdentifier(r.name)) {
        return Fail("role name '" + r.name + "' of association '" + a.name +
                    "' is not an identifier");
      }
      if (!r.target.valid() || r.target.raw() > classes_.size()) {
        return Fail("association '" + a.name + "' role '" + r.name +
                    "' targets a non-existent class");
      }
      if (!r.cardinality.IsValid()) {
        return Fail("association '" + a.name + "' role '" + r.name +
                    "' has invalid cardinality " + r.cardinality.ToString());
      }
    }
  }

  // -- Association generalization ---------------------------------------------
  for (const Association& a : associations_) {
    if (!a.is_specialized()) continue;
    AssociationId super = a.generalizes_into;
    if (!super.valid() || super.raw() > associations_.size()) {
      return Fail("association '" + a.name +
                  "' specializes a non-existent association");
    }
    if (super == a.id) {
      return Fail("association '" + a.name + "' specializes itself");
    }
    const Association& s = associations_[super.raw() - 1];
    // Roles correspond positionally; the specialized role target must be
    // the same class or a specialization of the general role target.
    for (int i = 0; i < 2; ++i) {
      if (!schema.IsSameOrSpecializationOf(a.roles[i].target,
                                           s.roles[i].target)) {
        return Fail("association '" + a.name + "' role '" +
                    a.roles[i].name +
                    "' targets a class that does not specialize the "
                    "general association's role target");
      }
    }
  }
  for (const Association& a : associations_) {
    AssociationId cur = a.generalizes_into;
    size_t steps = 0;
    while (cur.valid()) {
      if (cur == a.id) {
        return Fail("generalization cycle through association '" + a.name +
                    "'");
      }
      if (++steps > associations_.size()) {
        return Fail("generalization cycle detected (associations)");
      }
      cur = associations_[cur.raw() - 1].generalizes_into;
    }
  }

  // -- Covering conditions require specializations ----------------------------
  for (const ObjectClass& c : classes_) {
    if (c.covering && schema.SpecializationsOf(c.id).empty()) {
      return Fail("covering class '" + c.name + "' has no specializations");
    }
  }
  for (const Association& a : associations_) {
    if (a.covering && schema.SpecializationsOf(a.id).empty()) {
      return Fail("covering association '" + a.name +
                  "' has no specializations");
    }
  }

  return Status::OK();
}

}  // namespace seed::schema
