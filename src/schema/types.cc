#include "schema/types.h"

#include <cstdio>

#include "common/strings.h"

namespace seed::schema {

std::string_view ValueTypeToString(ValueType t) {
  switch (t) {
    case ValueType::kNone:
      return "NONE";
    case ValueType::kString:
      return "STRING";
    case ValueType::kInt:
      return "INT";
    case ValueType::kReal:
      return "REAL";
    case ValueType::kBool:
      return "BOOL";
    case ValueType::kDate:
      return "DATE";
    case ValueType::kEnum:
      return "ENUM";
  }
  return "?";
}

namespace {
bool IsLeapYear(std::int32_t y) {
  return (y % 4 == 0 && y % 100 != 0) || y % 400 == 0;
}

std::uint8_t DaysInMonth(std::int32_t year, std::uint8_t month) {
  static constexpr std::uint8_t kDays[] = {31, 28, 31, 30, 31, 30,
                                           31, 31, 30, 31, 30, 31};
  if (month == 2 && IsLeapYear(year)) return 29;
  return kDays[month - 1];
}
}  // namespace

Result<Date> Date::Make(std::int32_t year, std::uint8_t month,
                        std::uint8_t day) {
  if (month < 1 || month > 12) {
    return Status::InvalidArgument("month " + std::to_string(month) +
                                   " out of range");
  }
  if (day < 1 || day > DaysInMonth(year, month)) {
    return Status::InvalidArgument("day " + std::to_string(day) +
                                   " out of range for " +
                                   std::to_string(year) + "-" +
                                   std::to_string(month));
  }
  return Date{year, month, day};
}

std::string Date::ToString() const {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%04d-%02u-%02u", year, month, day);
  return buf;
}

Result<Date> Date::Parse(std::string_view s) {
  auto parts = strings::Split(s, '-');
  if (parts.size() != 3) {
    return Status::InvalidArgument("bad date '" + std::string(s) +
                                   "', want YYYY-MM-DD");
  }
  errno = 0;
  char* end = nullptr;
  long y = std::strtol(parts[0].c_str(), &end, 10);
  if (end == parts[0].c_str() || *end != '\0') {
    return Status::InvalidArgument("bad year in date '" + std::string(s) +
                                   "'");
  }
  long m = std::strtol(parts[1].c_str(), &end, 10);
  if (end == parts[1].c_str() || *end != '\0') {
    return Status::InvalidArgument("bad month in date '" + std::string(s) +
                                   "'");
  }
  long d = std::strtol(parts[2].c_str(), &end, 10);
  if (end == parts[2].c_str() || *end != '\0') {
    return Status::InvalidArgument("bad day in date '" + std::string(s) +
                                   "'");
  }
  if (m < 1 || m > 12 || d < 1 || d > 31) {
    return Status::InvalidArgument("date components out of range in '" +
                                   std::string(s) + "'");
  }
  return Date::Make(static_cast<std::int32_t>(y),
                    static_cast<std::uint8_t>(m),
                    static_cast<std::uint8_t>(d));
}

std::string Cardinality::ToString() const {
  std::string out = std::to_string(min) + "..";
  out += unlimited_max() ? "*" : std::to_string(max);
  return out;
}

}  // namespace seed::schema
