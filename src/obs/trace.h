// Per-query execution tracing: the ExecContext threaded through the
// query stack (parser -> logical lowering -> Planner -> Algebra) that
// accumulates per-phase wall-clock and drives EXPLAIN ANALYZE.
//
// The context is deliberately tiny and optional: a null ExecContext*
// anywhere in the stack means "no tracing", and the per-node operator
// timings it requests add two steady_clock reads per *plan node* (never
// per row). Phase timings always also feed the global MetricsRegistry
// histograms (query.phase.<phase>.ns), so the shell's `stats` and the
// bench trajectory see aggregate latency without any query opting in.

#ifndef SEED_OBS_TRACE_H_
#define SEED_OBS_TRACE_H_

#include <atomic>
#include <cstdint>
#include <string>

#include "obs/metrics.h"

namespace seed::obs {

/// The phases every textual query passes through.
enum class QueryPhase : int {
  kParse = 0,     // tokenizing + grammar
  kLower = 1,     // building the logical chain
  kOptimize = 2,  // access-path planning + join-order DP
  kExecute = 3,   // selections, join tree, projection
};
inline constexpr int kNumQueryPhases = 4;

const char* QueryPhaseName(QueryPhase phase);

/// The per-query trace sink. Created by an EXPLAIN ANALYZE entry point
/// (or any caller wanting phase timings) and threaded through the stack.
///
/// Threading: phase totals are atomic, so concurrent plan-subtree tasks
/// may AddPhase into one shared context without tearing — relaxed adds
/// commute, so the totals stay exact. Per-node stamps in the plan tree
/// are not in here: each node is written only by the one task executing
/// its subtree, published at the worker pool's Await barrier. Copying a
/// context (it travels inside QueryTrace) snapshots the totals and is
/// only done after execution has quiesced.
struct ExecContext {
  /// When true, plan execution also stamps per-node wall-clock into the
  /// PhysicalPlan tree (Planner::ExecuteNode).
  bool time_nodes = true;

  std::atomic<std::uint64_t> phase_ns[kNumQueryPhases] = {};

  ExecContext() = default;
  ExecContext(const ExecContext& other) { *this = other; }
  ExecContext& operator=(const ExecContext& other) {
    time_nodes = other.time_nodes;
    for (int i = 0; i < kNumQueryPhases; ++i) {
      phase_ns[i].store(other.phase_ns[i].load(std::memory_order_relaxed),
                        std::memory_order_relaxed);
    }
    return *this;
  }

  void AddPhase(QueryPhase phase, std::uint64_t ns);

  /// "parse 12.3us, lower 1.1us, optimize 45.6us, execute 1.2ms" —
  /// `mask_times` replaces every duration with "<t>" so golden tests can
  /// pin the structure without the wall-clock.
  std::string PhaseSummary(bool mask_times = false) const;
};

/// Adds `ns` to `ctx` (null ok) and the phase's registry histogram —
/// the manual form for code whose phases do not nest as scopes.
void RecordPhase(ExecContext* ctx, QueryPhase phase, std::uint64_t ns);

/// Times one phase into `ctx` (null ok) and the matching registry
/// histogram. Usage:
///   { PhaseTimer t(ctx, QueryPhase::kOptimize); ... }
class PhaseTimer {
 public:
  PhaseTimer(ExecContext* ctx, QueryPhase phase);
  ~PhaseTimer();
  PhaseTimer(const PhaseTimer&) = delete;
  PhaseTimer& operator=(const PhaseTimer&) = delete;

 private:
  ExecContext* ctx_;
  QueryPhase phase_;
  std::uint64_t start_;
};

}  // namespace seed::obs

#endif  // SEED_OBS_TRACE_H_
