#include "obs/metrics.h"

#include <algorithm>
#include <bit>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <vector>

namespace seed::obs {

namespace {

bool InitialEnabled() {
  const char* env = std::getenv("SEED_METRICS");
  if (env == nullptr) return true;
  return !(std::strcmp(env, "off") == 0 || std::strcmp(env, "0") == 0 ||
           std::strcmp(env, "false") == 0);
}

std::atomic<bool>& EnabledFlag() {
  static std::atomic<bool> enabled{InitialEnabled()};
  return enabled;
}

void AppendJsonString(std::string* out, std::string_view s) {
  out->push_back('"');
  for (char c : s) {
    if (c == '"' || c == '\\') out->push_back('\\');
    out->push_back(c);
  }
  out->push_back('"');
}

}  // namespace

bool MetricsEnabled() {
  return EnabledFlag().load(std::memory_order_relaxed);
}

void SetMetricsEnabled(bool enabled) {
  EnabledFlag().store(enabled, std::memory_order_relaxed);
}

std::uint64_t NowNanos() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

std::string FormatNanos(std::uint64_t ns) {
  char buf[32];
  if (ns < 1000) {
    std::snprintf(buf, sizeof(buf), "%lluns",
                  static_cast<unsigned long long>(ns));
  } else if (ns < 1000 * 1000) {
    std::snprintf(buf, sizeof(buf), "%.2fus", static_cast<double>(ns) / 1e3);
  } else if (ns < 1000ull * 1000 * 1000) {
    std::snprintf(buf, sizeof(buf), "%.2fms", static_cast<double>(ns) / 1e6);
  } else {
    std::snprintf(buf, sizeof(buf), "%.2fs", static_cast<double>(ns) / 1e9);
  }
  return buf;
}

// --- Histogram ---------------------------------------------------------------

std::size_t Histogram::BucketIndex(std::uint64_t value) {
  if (value == 0) return 0;
  std::size_t idx = static_cast<std::size_t>(std::bit_width(value));
  return idx < kNumBuckets ? idx : kNumBuckets - 1;
}

std::uint64_t Histogram::BucketLowerBound(std::size_t i) {
  return i == 0 ? 0 : std::uint64_t{1} << (i - 1);
}

void Histogram::Record(std::uint64_t value) {
  if (!MetricsEnabled()) return;
  buckets_[BucketIndex(value)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
}

std::uint64_t Histogram::ApproxQuantile(double q) const {
  std::uint64_t total = count();
  if (total == 0) return 0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  // The rank of the q-th value, 1-based; walk the buckets until reached.
  std::uint64_t rank = static_cast<std::uint64_t>(q * (total - 1)) + 1;
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < kNumBuckets; ++i) {
    seen += bucket(i);
    if (seen >= rank) return BucketLowerBound(i);
  }
  return BucketLowerBound(kNumBuckets - 1);
}

std::string Histogram::Summary() const {
  std::uint64_t n = count();
  if (n == 0) return "count=0";
  std::string s = "count=" + std::to_string(n) + " sum=" + FormatNanos(sum());
  s += " p50~" + FormatNanos(ApproxQuantile(0.5));
  s += " p90~" + FormatNanos(ApproxQuantile(0.9));
  s += " p99~" + FormatNanos(ApproxQuantile(0.99));
  return s;
}

void Histogram::Reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
}

// --- MetricsRegistry ---------------------------------------------------------

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry();  // never dies
  return *registry;
}

Counter* MetricsRegistry::GetCounter(std::string_view name) {
  common::MutexLock lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>())
             .first;
  }
  return it->second.get();
}

Gauge* MetricsRegistry::GetGauge(std::string_view name) {
  common::MutexLock lock(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  }
  return it->second.get();
}

Histogram* MetricsRegistry::GetHistogram(std::string_view name) {
  common::MutexLock lock(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.emplace(std::string(name), std::make_unique<Histogram>())
             .first;
  }
  return it->second.get();
}

const Counter* MetricsRegistry::FindCounter(std::string_view name) const {
  common::MutexLock lock(mu_);
  auto it = counters_.find(name);
  return it == counters_.end() ? nullptr : it->second.get();
}

const Histogram* MetricsRegistry::FindHistogram(std::string_view name) const {
  common::MutexLock lock(mu_);
  auto it = histograms_.find(name);
  return it == histograms_.end() ? nullptr : it->second.get();
}

std::string MetricsRegistry::ToJson() const {
  common::MutexLock lock(mu_);
  std::string out = "{\"counters\": {";
  bool first = true;
  for (const auto& [name, counter] : counters_) {
    if (!first) out += ", ";
    first = false;
    AppendJsonString(&out, name);
    out += ": " + std::to_string(counter->value());
  }
  out += "}, \"gauges\": {";
  first = true;
  for (const auto& [name, gauge] : gauges_) {
    if (!first) out += ", ";
    first = false;
    AppendJsonString(&out, name);
    out += ": " + std::to_string(gauge->value());
  }
  out += "}, \"histograms\": {";
  first = true;
  for (const auto& [name, hist] : histograms_) {
    if (!first) out += ", ";
    first = false;
    AppendJsonString(&out, name);
    out += ": {\"count\": " + std::to_string(hist->count()) +
           ", \"sum\": " + std::to_string(hist->sum()) +
           ", \"p50\": " + std::to_string(hist->ApproxQuantile(0.5)) +
           ", \"p90\": " + std::to_string(hist->ApproxQuantile(0.9)) +
           ", \"p99\": " + std::to_string(hist->ApproxQuantile(0.99)) +
           ", \"buckets\": [";
    bool first_bucket = true;
    for (std::size_t i = 0; i < Histogram::kNumBuckets; ++i) {
      std::uint64_t n = hist->bucket(i);
      if (n == 0) continue;
      if (!first_bucket) out += ", ";
      first_bucket = false;
      out += "[" + std::to_string(Histogram::BucketLowerBound(i)) + ", " +
             std::to_string(n) + "]";
    }
    out += "]}";
  }
  out += "}}";
  return out;
}

std::string MetricsRegistry::Summary(std::size_t top_counters) const {
  common::MutexLock lock(mu_);
  std::vector<std::pair<std::uint64_t, std::string_view>> top;
  for (const auto& [name, counter] : counters_) {
    std::uint64_t v = counter->value();
    if (v != 0) top.emplace_back(v, name);
  }
  std::stable_sort(
      top.begin(), top.end(),
      [](const auto& a, const auto& b) { return a.first > b.first; });
  if (top.size() > top_counters) top.resize(top_counters);

  std::string s;
  if (!top.empty()) {
    s += "  counters (top " + std::to_string(top.size()) + "):\n";
    for (const auto& [v, name] : top) {
      s += "    " + std::string(name) + " = " + std::to_string(v) + "\n";
    }
  }
  for (const auto& [name, gauge] : gauges_) {
    if (gauge->value() == 0) continue;
    s += "  gauge " + name + " = " + std::to_string(gauge->value()) + "\n";
  }
  for (const auto& [name, hist] : histograms_) {
    if (hist->count() == 0) continue;
    s += "  " + name + ": " + hist->Summary() + "\n";
  }
  if (s.empty()) s = "  (no metrics recorded)\n";
  return s;
}

void MetricsRegistry::Reset() {
  common::MutexLock lock(mu_);
  for (auto& [name, counter] : counters_) counter->Reset();
  for (auto& [name, gauge] : gauges_) gauge->Reset();
  for (auto& [name, hist] : histograms_) hist->Reset();
}

}  // namespace seed::obs
