#include "obs/trace.h"

namespace seed::obs {

namespace {

Histogram* PhaseHistogram(QueryPhase phase) {
  static Histogram* hists[kNumQueryPhases] = {
      MetricsRegistry::Global().GetHistogram("query.phase.parse.ns"),
      MetricsRegistry::Global().GetHistogram("query.phase.lower.ns"),
      MetricsRegistry::Global().GetHistogram("query.phase.optimize.ns"),
      MetricsRegistry::Global().GetHistogram("query.phase.execute.ns"),
  };
  return hists[static_cast<int>(phase)];
}

}  // namespace

const char* QueryPhaseName(QueryPhase phase) {
  switch (phase) {
    case QueryPhase::kParse:
      return "parse";
    case QueryPhase::kLower:
      return "lower";
    case QueryPhase::kOptimize:
      return "optimize";
    case QueryPhase::kExecute:
      return "execute";
  }
  return "?";
}

void ExecContext::AddPhase(QueryPhase phase, std::uint64_t ns) {
  phase_ns[static_cast<int>(phase)].fetch_add(ns, std::memory_order_relaxed);
}

std::string ExecContext::PhaseSummary(bool mask_times) const {
  std::string s;
  for (int i = 0; i < kNumQueryPhases; ++i) {
    if (!s.empty()) s += ", ";
    s += QueryPhaseName(static_cast<QueryPhase>(i));
    s += " ";
    s += mask_times
             ? "<t>"
             : FormatNanos(phase_ns[i].load(std::memory_order_relaxed));
  }
  return s;
}

void RecordPhase(ExecContext* ctx, QueryPhase phase, std::uint64_t ns) {
  if (ctx != nullptr) ctx->AddPhase(phase, ns);
  PhaseHistogram(phase)->Record(ns);
}

PhaseTimer::PhaseTimer(ExecContext* ctx, QueryPhase phase)
    : ctx_(ctx), phase_(phase), start_(NowNanos()) {}

PhaseTimer::~PhaseTimer() {
  RecordPhase(ctx_, phase_, NowNanos() - start_);
}

}  // namespace seed::obs
