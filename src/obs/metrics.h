// Engine-wide metrics: monotonic counters, gauges, and fixed log-bucket
// histograms behind one process-global registry.
//
// Design constraints, in order:
//  * near-zero overhead on hot paths — every instrument is a plain
//    relaxed atomic, instrumentation sites cache the instrument pointer
//    in a function-local static, and a process-global enabled flag
//    (SEED_METRICS=off / MetricsRegistry::SetEnabled) turns every Record
//    into a single predictable-branch load;
//  * thread-safety without locks on the data path — the future worker
//    pool and the multiuser server increment the same counters the
//    single-threaded engine does today, unchanged (registration takes a
//    mutex; reads and writes never do);
//  * stable pointers — instruments are never deleted once registered, so
//    cached pointers stay valid for the process lifetime, and Reset()
//    zeroes values in place rather than discarding objects.
//
// Naming convention (docs/metrics.md): `<subsystem>.<noun>.<verb>` with
// the unit suffixed when the value is not a plain count — e.g.
// `index.probes.total`, `storage.wal.appended.bytes`,
// `query.phase.execute.ns`. ToJson() emits every instrument under a
// stable schema so BENCH_*.json trajectories and CI gates can diff runs.

#ifndef SEED_OBS_METRICS_H_
#define SEED_OBS_METRICS_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>

#include "common/thread_annotations.h"

namespace seed::obs {

/// True unless metrics were disabled (SEED_METRICS=off/0/false in the
/// environment at first use, or SetMetricsEnabled(false)). Checked by
/// every instrument write.
bool MetricsEnabled();
void SetMetricsEnabled(bool enabled);

/// Monotonic wall-clock nanoseconds (std::chrono::steady_clock).
std::uint64_t NowNanos();

/// "1.234ms" / "850ns" / "2.10s" — human display of a nanosecond span.
std::string FormatNanos(std::uint64_t ns);

/// A monotonically increasing event count. Wraps around at 2^64 like any
/// unsigned counter; consumers diff snapshots, so wraparound is benign.
class Counter {
 public:
  void Increment(std::uint64_t n = 1) {
    if (!MetricsEnabled()) return;
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// A point-in-time level (sessions connected, locks held). Signed so
/// Add(-1) on release cannot underflow the display.
class Gauge {
 public:
  void Set(std::int64_t v) {
    if (!MetricsEnabled()) return;
    value_.store(v, std::memory_order_relaxed);
  }
  void Add(std::int64_t d) {
    if (!MetricsEnabled()) return;
    value_.fetch_add(d, std::memory_order_relaxed);
  }
  std::int64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> value_{0};
};

/// Fixed log2-bucket histogram: bucket 0 holds the value 0, bucket i
/// (i >= 1) holds [2^(i-1), 2^i). 40 buckets cover every nanosecond
/// latency up to ~9 minutes exactly; larger values clamp into the last
/// bucket. Recording is two relaxed fetch_adds — no allocation, no lock —
/// so the future worker pool can record concurrently without coordination.
class Histogram {
 public:
  static constexpr std::size_t kNumBuckets = 40;

  /// Bucket index of `value`: 0 for 0, otherwise floor(log2(value)) + 1,
  /// clamped to the last bucket.
  static std::size_t BucketIndex(std::uint64_t value);
  /// Smallest value landing in bucket `i` (0, 1, 2, 4, 8, ...).
  static std::uint64_t BucketLowerBound(std::size_t i);

  void Record(std::uint64_t value);

  std::uint64_t count() const {
    return count_.load(std::memory_order_relaxed);
  }
  std::uint64_t sum() const { return sum_.load(std::memory_order_relaxed); }
  std::uint64_t bucket(std::size_t i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }

  /// Approximate value at quantile `q` in [0, 1]: the lower bound of the
  /// bucket holding the q-th recorded value (0 when empty). Exact for
  /// distributions that land on bucket bounds; otherwise within 2x.
  std::uint64_t ApproxQuantile(double q) const;

  /// "count=12 sum=1.2ms p50~64us p99~1.0ms" — for the shell's stats.
  std::string Summary() const;

  void Reset();

 private:
  std::atomic<std::uint64_t> buckets_[kNumBuckets] = {};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_{0};
};

/// Records the lifetime of a scope into a histogram (nanoseconds).
/// A null histogram makes the timer inert.
class ScopedTimer {
 public:
  explicit ScopedTimer(Histogram* hist)
      : hist_(hist), start_(hist != nullptr ? NowNanos() : 0) {}
  ~ScopedTimer() {
    if (hist_ != nullptr) hist_->Record(NowNanos() - start_);
  }
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  Histogram* hist_;
  std::uint64_t start_;
};

/// The process-global instrument registry. Get* registers on first use
/// and returns the same stable pointer ever after; instrumentation sites
/// cache it in a function-local static:
///
///   static obs::Counter* probes =
///       obs::MetricsRegistry::Global().GetCounter("index.probes.total");
///   probes->Increment();
class MetricsRegistry {
 public:
  static MetricsRegistry& Global();

  Counter* GetCounter(std::string_view name) SEED_EXCLUDES(mu_);
  Gauge* GetGauge(std::string_view name) SEED_EXCLUDES(mu_);
  Histogram* GetHistogram(std::string_view name) SEED_EXCLUDES(mu_);

  /// The instrument if it was ever registered, else nullptr (for tests
  /// and exporters that must not create metrics as a side effect).
  const Counter* FindCounter(std::string_view name) const SEED_EXCLUDES(mu_);
  const Histogram* FindHistogram(std::string_view name) const
      SEED_EXCLUDES(mu_);

  /// Stable-schema JSON of every instrument:
  ///   {"counters": {name: value, ...},
  ///    "gauges": {name: value, ...},
  ///    "histograms": {name: {"count": n, "sum": s, "p50": v, "p90": v,
  ///                          "p99": v, "buckets": [[lower, count], ...]},
  ///                   ...}}
  /// Names are sorted; histogram buckets list only non-empty buckets.
  std::string ToJson() const SEED_EXCLUDES(mu_);

  /// Human summary for the interactive shell: the `top_counters` largest
  /// counters, every non-zero gauge, and every non-empty histogram.
  std::string Summary(std::size_t top_counters = 10) const SEED_EXCLUDES(mu_);

  /// Zeroes every value in place; registered pointers stay valid.
  void Reset() SEED_EXCLUDES(mu_);

 private:
  MetricsRegistry() = default;

  // Guards the registration maps; instrument data stays lock-free atomics
  // (returned pointers outlive the lock by design — instruments are never
  // deleted).
  mutable common::Mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_
      SEED_GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_
      SEED_GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_
      SEED_GUARDED_BY(mu_);
};

}  // namespace seed::obs

#endif  // SEED_OBS_METRICS_H_
