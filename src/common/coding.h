// Byte-level encoding primitives used by the storage layer and by item
// serialization: little-endian fixed ints, LEB128 varints, length-prefixed
// strings, and a simple incremental Decoder with bounds checking.

#ifndef SEED_COMMON_CODING_H_
#define SEED_COMMON_CODING_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"

namespace seed {

/// Growable byte buffer with append-style encoders.
class Encoder {
 public:
  void PutU8(std::uint8_t v) { buf_.push_back(v); }

  void PutU32(std::uint32_t v) {
    for (int i = 0; i < 4; ++i) buf_.push_back((v >> (8 * i)) & 0xFF);
  }

  void PutU64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) buf_.push_back((v >> (8 * i)) & 0xFF);
  }

  void PutI64(std::int64_t v) { PutU64(static_cast<std::uint64_t>(v)); }

  void PutDouble(double v) {
    std::uint64_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    PutU64(bits);
  }

  void PutBool(bool v) { PutU8(v ? 1 : 0); }

  /// Unsigned LEB128.
  void PutVarint(std::uint64_t v) {
    while (v >= 0x80) {
      buf_.push_back(static_cast<std::uint8_t>(v) | 0x80);
      v >>= 7;
    }
    buf_.push_back(static_cast<std::uint8_t>(v));
  }

  /// Varint length followed by raw bytes.
  void PutString(std::string_view s) {
    PutVarint(s.size());
    buf_.insert(buf_.end(), s.begin(), s.end());
  }

  void PutRaw(const void* data, size_t n) {
    const auto* p = static_cast<const std::uint8_t*>(data);
    buf_.insert(buf_.end(), p, p + n);
  }

  const std::vector<std::uint8_t>& bytes() const { return buf_; }
  std::vector<std::uint8_t> TakeBytes() { return std::move(buf_); }
  size_t size() const { return buf_.size(); }

 private:
  std::vector<std::uint8_t> buf_;
};

/// Bounds-checked sequential reader over a byte span.
class Decoder {
 public:
  Decoder(const void* data, size_t size)
      : data_(static_cast<const std::uint8_t*>(data)), size_(size) {}
  explicit Decoder(const std::vector<std::uint8_t>& buf)
      : Decoder(buf.data(), buf.size()) {}

  size_t remaining() const { return size_ - pos_; }
  bool done() const { return pos_ == size_; }

  Result<std::uint8_t> GetU8() {
    if (remaining() < 1) return Truncated("u8");
    return data_[pos_++];
  }

  Result<std::uint32_t> GetU32() {
    if (remaining() < 4) return Truncated("u32");
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<std::uint32_t>(data_[pos_ + i]) << (8 * i);
    }
    pos_ += 4;
    return v;
  }

  Result<std::uint64_t> GetU64() {
    if (remaining() < 8) return Truncated("u64");
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<std::uint64_t>(data_[pos_ + i]) << (8 * i);
    }
    pos_ += 8;
    return v;
  }

  Result<std::int64_t> GetI64() {
    auto v = GetU64();
    if (!v.ok()) return v.status();
    return static_cast<std::int64_t>(*v);
  }

  Result<double> GetDouble() {
    auto v = GetU64();
    if (!v.ok()) return v.status();
    double d;
    std::uint64_t bits = *v;
    std::memcpy(&d, &bits, sizeof(d));
    return d;
  }

  Result<bool> GetBool() {
    auto v = GetU8();
    if (!v.ok()) return v.status();
    return *v != 0;
  }

  Result<std::uint64_t> GetVarint() {
    std::uint64_t v = 0;
    int shift = 0;
    while (true) {
      if (remaining() < 1) return Truncated("varint");
      if (shift >= 64) {
        return Status::Corruption("varint too long");
      }
      std::uint8_t b = data_[pos_++];
      v |= static_cast<std::uint64_t>(b & 0x7F) << shift;
      if ((b & 0x80) == 0) return v;
      shift += 7;
    }
  }

  /// Skips `n` bytes.
  Status Skip(size_t n) {
    if (remaining() < n) return Truncated("skip");
    pos_ += n;
    return Status::OK();
  }

  Result<std::string> GetString() {
    auto len = GetVarint();
    if (!len.ok()) return len.status();
    if (remaining() < *len) return Truncated("string body");
    std::string s(reinterpret_cast<const char*>(data_ + pos_),
                  static_cast<size_t>(*len));
    pos_ += static_cast<size_t>(*len);
    return s;
  }

 private:
  Status Truncated(std::string_view what) const {
    return Status::Corruption("decode: truncated " + std::string(what) +
                              " at offset " + std::to_string(pos_));
  }

  const std::uint8_t* data_;
  size_t size_;
  size_t pos_ = 0;
};

/// FNV-1a 64-bit hash, used as a cheap page/record checksum.
std::uint64_t Fnv1a64(const void* data, size_t n);

}  // namespace seed

#endif  // SEED_COMMON_CODING_H_
