#include "common/strings.h"

#include <cctype>

namespace seed {

std::string PathSegment::ToString() const {
  if (!index.has_value()) return name;
  return name + "[" + std::to_string(*index) + "]";
}

namespace strings {

std::vector<std::string> Split(std::string_view s, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    size_t pos = s.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(s.substr(start));
      return out;
    }
    out.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
}

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

bool IsIdentifier(std::string_view s) {
  if (s.empty()) return false;
  if (!std::isalpha(static_cast<unsigned char>(s[0])) && s[0] != '_') {
    return false;
  }
  for (char c : s.substr(1)) {
    if (!std::isalnum(static_cast<unsigned char>(c)) && c != '_') {
      return false;
    }
  }
  return true;
}

Result<PathSegment> ParseSegment(std::string_view s) {
  PathSegment seg;
  size_t bracket = s.find('[');
  if (bracket == std::string_view::npos) {
    if (!IsIdentifier(s)) {
      return Status::InvalidArgument("bad path segment '" + std::string(s) +
                                     "'");
    }
    seg.name = std::string(s);
    return seg;
  }
  if (s.empty() || s.back() != ']') {
    return Status::InvalidArgument("unterminated index in segment '" +
                                   std::string(s) + "'");
  }
  std::string_view name = s.substr(0, bracket);
  std::string_view idx = s.substr(bracket + 1, s.size() - bracket - 2);
  if (!IsIdentifier(name)) {
    return Status::InvalidArgument("bad path segment '" + std::string(s) +
                                   "'");
  }
  if (idx.empty()) {
    return Status::InvalidArgument("empty index in segment '" +
                                   std::string(s) + "'");
  }
  std::uint64_t value = 0;
  for (char c : idx) {
    if (!std::isdigit(static_cast<unsigned char>(c))) {
      return Status::InvalidArgument("non-numeric index in segment '" +
                                     std::string(s) + "'");
    }
    value = value * 10 + static_cast<std::uint64_t>(c - '0');
    if (value > 0xFFFFFFFFull) {
      return Status::InvalidArgument("index overflow in segment '" +
                                     std::string(s) + "'");
    }
  }
  seg.name = std::string(name);
  seg.index = static_cast<std::uint32_t>(value);
  return seg;
}

Result<std::vector<PathSegment>> ParsePath(std::string_view s) {
  if (s.empty()) return Status::InvalidArgument("empty path");
  std::vector<PathSegment> out;
  for (const std::string& part : Split(s, '.')) {
    auto seg = ParseSegment(part);
    if (!seg.ok()) return seg.status();
    out.push_back(std::move(seg).value());
  }
  return out;
}

std::string PathToString(const std::vector<PathSegment>& path) {
  std::string out;
  for (size_t i = 0; i < path.size(); ++i) {
    if (i > 0) out += '.';
    out += path[i].ToString();
  }
  return out;
}

}  // namespace strings
}  // namespace seed
