// Clang thread-safety annotations and an annotated mutex wrapper.
//
// The engine's threading contracts (docs/execution.md, "Threading
// contract by layer") were prose until this header: now every
// mutex-protected structure names its lock with SEED_GUARDED_BY and every
// function that expects a lock held names it with SEED_REQUIRES, so a
// clang build with -Wthread-safety -Werror (the `static-analysis` CI job)
// rejects code that touches guarded state without the guard.
//
// Under compilers without the capability attributes (gcc, msvc) every
// macro expands to nothing, so the annotations are free outside the
// analysis build.
//
// Conventions (docs/static_analysis.md):
//  * use `common::Mutex` + `common::MutexLock`, never a bare std::mutex —
//    the standard mutex carries no attributes, so clang cannot track it;
//  * annotate the *member*, not the accessor: `Foo foo_ SEED_GUARDED_BY(mu_)`;
//  * private helpers called under the lock take SEED_REQUIRES(mu_);
//  * a deliberately unchecked escape (lock-free atomics mixed into a
//    guarded structure, adopting a lock across an API boundary) uses
//    SEED_NO_THREAD_SAFETY_ANALYSIS with a comment saying why.

#ifndef SEED_COMMON_THREAD_ANNOTATIONS_H_
#define SEED_COMMON_THREAD_ANNOTATIONS_H_

#include <condition_variable>
#include <mutex>

#if defined(__clang__)
#define SEED_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define SEED_THREAD_ANNOTATION(x)
#endif

/// Marks a class as a lockable capability ("mutex" in diagnostics).
#define SEED_CAPABILITY(x) SEED_THREAD_ANNOTATION(capability(x))

/// Marks an RAII class that acquires in its constructor and releases in
/// its destructor.
#define SEED_SCOPED_CAPABILITY SEED_THREAD_ANNOTATION(scoped_lockable)

/// Data member readable/writable only with the named mutex held.
#define SEED_GUARDED_BY(x) SEED_THREAD_ANNOTATION(guarded_by(x))

/// Pointer member whose *pointee* is protected by the named mutex.
#define SEED_PT_GUARDED_BY(x) SEED_THREAD_ANNOTATION(pt_guarded_by(x))

/// Function that must be called with the mutex(es) held (and keeps them).
#define SEED_REQUIRES(...) \
  SEED_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define SEED_REQUIRES_SHARED(...) \
  SEED_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))

/// Function that acquires/releases the mutex(es) itself.
#define SEED_ACQUIRE(...) \
  SEED_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define SEED_RELEASE(...) \
  SEED_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define SEED_TRY_ACQUIRE(...) \
  SEED_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))

/// Function that must NOT be called with the mutex(es) held (deadlock
/// guard for functions that lock internally).
#define SEED_EXCLUDES(...) SEED_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/// Function returning a reference to the named capability.
#define SEED_RETURN_CAPABILITY(x) SEED_THREAD_ANNOTATION(lock_returned(x))

/// Runtime assertion that the capability is held (trusted by analysis).
#define SEED_ASSERT_CAPABILITY(x) \
  SEED_THREAD_ANNOTATION(assert_capability(x))

/// Escape hatch; always pair with a comment explaining why the analysis
/// cannot see the invariant.
#define SEED_NO_THREAD_SAFETY_ANALYSIS \
  SEED_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace seed::common {

/// std::mutex with capability attributes so clang can track it.
class SEED_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() SEED_ACQUIRE() { mu_.lock(); }
  void Unlock() SEED_RELEASE() { mu_.unlock(); }
  bool TryLock() SEED_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  friend class CondVar;
  std::mutex mu_;
};

/// RAII lock over a common::Mutex (the std::lock_guard equivalent).
class SEED_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) SEED_ACQUIRE(mu) : mu_(mu) { mu_.Lock(); }
  ~MutexLock() SEED_RELEASE() { mu_.Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// Condition variable that waits on a *held* common::Mutex. Wait adopts
/// the caller's lock for the duration of the wait and returns with it
/// re-held, so from the analysis' point of view the mutex never moves.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void Wait(Mutex& mu) SEED_REQUIRES(mu) {
    std::unique_lock<std::mutex> lk(mu.mu_, std::adopt_lock);
    cv_.wait(lk);
    lk.release();  // ownership stays with the caller
  }

  template <typename Predicate>
  void Wait(Mutex& mu, Predicate pred) SEED_REQUIRES(mu) {
    std::unique_lock<std::mutex> lk(mu.mu_, std::adopt_lock);
    cv_.wait(lk, std::move(pred));
    lk.release();  // ownership stays with the caller
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace seed::common

#endif  // SEED_COMMON_THREAD_ANNOTATIONS_H_
