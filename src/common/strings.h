// String and dotted-path utilities.
//
// SEED names dependent objects by composing the parent name with the role,
// e.g. `Alarms.Text.Body.Keywords[1]` (paper, Fig. 1). This header provides
// the path grammar used throughout:
//
//   path      := segment ('.' segment)*
//   segment   := identifier ('[' index ']')?
//   identifier := [A-Za-z_][A-Za-z0-9_]*

#ifndef SEED_COMMON_STRINGS_H_
#define SEED_COMMON_STRINGS_H_

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"

namespace seed {

/// One component of a dotted path: a role name plus an optional index for
/// multi-valued roles (`Keywords[1]`).
struct PathSegment {
  std::string name;
  /// Index for multi-valued roles; nullopt for single-valued segments.
  std::optional<std::uint32_t> index;

  bool operator==(const PathSegment&) const = default;

  /// Renders "name" or "name[index]".
  std::string ToString() const;
};

namespace strings {

/// Splits `s` on `sep`; keeps empty tokens.
std::vector<std::string> Split(std::string_view s, char sep);

/// Joins `parts` with `sep`.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

bool StartsWith(std::string_view s, std::string_view prefix);
bool EndsWith(std::string_view s, std::string_view suffix);

/// True iff `s` is a valid SEED identifier ([A-Za-z_][A-Za-z0-9_]*).
bool IsIdentifier(std::string_view s);

/// Parses a single path segment ("Body" or "Keywords[1]").
Result<PathSegment> ParseSegment(std::string_view s);

/// Parses a full dotted path ("Alarms.Text.Body.Keywords[1]").
Result<std::vector<PathSegment>> ParsePath(std::string_view s);

/// Renders a path back to its dotted form.
std::string PathToString(const std::vector<PathSegment>& path);

}  // namespace strings
}  // namespace seed

#endif  // SEED_COMMON_STRINGS_H_
