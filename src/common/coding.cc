#include "common/coding.h"

namespace seed {

std::uint64_t Fnv1a64(const void* data, size_t n) {
  const auto* p = static_cast<const std::uint8_t*>(data);
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= 0x100000001b3ull;
  }
  return h;
}

}  // namespace seed
