#include "common/status.h"

namespace seed {

std::string_view StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kNotFound:
      return "not found";
    case StatusCode::kAlreadyExists:
      return "already exists";
    case StatusCode::kInvalidArgument:
      return "invalid argument";
    case StatusCode::kConsistencyViolation:
      return "consistency violation";
    case StatusCode::kFailedPrecondition:
      return "failed precondition";
    case StatusCode::kIoError:
      return "I/O error";
    case StatusCode::kCorruption:
      return "corruption";
    case StatusCode::kNotSupported:
      return "not supported";
    case StatusCode::kResourceExhausted:
      return "resource exhausted";
    case StatusCode::kLockConflict:
      return "lock conflict";
    case StatusCode::kInternal:
      return "internal error";
  }
  return "unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out(StatusCodeToString(code()));
  out += ": ";
  out += message();
  return out;
}

Status Status::WithContext(std::string_view context) const {
  if (ok()) return *this;
  std::string msg(context);
  msg += ": ";
  msg += message();
  return Status(code(), std::move(msg));
}

}  // namespace seed
