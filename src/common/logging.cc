#include "common/logging.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <ctime>

namespace seed {

namespace {

/// Resolves the initial level from SEED_LOG_LEVEL (debug|info|warn|error,
/// case-sensitive lowercase). Unset or unrecognized values keep the default
/// of kWarn so tests stay silent.
int InitialLevel() {
  const char* env = std::getenv("SEED_LOG_LEVEL");
  if (env == nullptr) return static_cast<int>(LogLevel::kWarn);
  if (std::strcmp(env, "debug") == 0) return static_cast<int>(LogLevel::kDebug);
  if (std::strcmp(env, "info") == 0) return static_cast<int>(LogLevel::kInfo);
  if (std::strcmp(env, "warn") == 0) return static_cast<int>(LogLevel::kWarn);
  if (std::strcmp(env, "error") == 0) return static_cast<int>(LogLevel::kError);
  return static_cast<int>(LogLevel::kWarn);
}

std::atomic<int> g_min_level{InitialLevel()};

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}

}  // namespace

void SetLogLevel(LogLevel level) {
  g_min_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel GetLogLevel() {
  return static_cast<LogLevel>(g_min_level.load(std::memory_order_relaxed));
}

void LogMessage(LogLevel level, const std::string& msg) {
  if (static_cast<int>(level) <
      g_min_level.load(std::memory_order_relaxed)) {
    return;
  }
  std::timespec ts{};
  std::timespec_get(&ts, TIME_UTC);
  std::tm tm{};
  gmtime_r(&ts.tv_sec, &tm);
  char stamp[64];
  std::snprintf(stamp, sizeof(stamp), "%04d-%02d-%02dT%02d:%02d:%02d.%03ldZ",
                tm.tm_year + 1900, tm.tm_mon + 1, tm.tm_mday, tm.tm_hour,
                tm.tm_min, tm.tm_sec, ts.tv_nsec / 1000000);
  std::fprintf(stderr, "%s [%s] %s\n", stamp, LevelName(level), msg.c_str());
}

}  // namespace seed
