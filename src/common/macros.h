// Error-propagation macros in the Arrow style.

#ifndef SEED_COMMON_MACROS_H_
#define SEED_COMMON_MACROS_H_

#include <utility>

#include "common/status.h"

/// Evaluates `expr` (a Status expression); returns it from the enclosing
/// function if it is an error.
#define SEED_RETURN_IF_ERROR(expr)                \
  do {                                            \
    ::seed::Status _seed_status = (expr);         \
    if (!_seed_status.ok()) return _seed_status;  \
  } while (false)

#define SEED_CONCAT_IMPL(a, b) a##b
#define SEED_CONCAT(a, b) SEED_CONCAT_IMPL(a, b)

/// Evaluates `rexpr` (a Result<T> expression); on error returns the status,
/// otherwise moves the value into `lhs` (which may be a declaration).
#define SEED_ASSIGN_OR_RETURN(lhs, rexpr)                        \
  SEED_ASSIGN_OR_RETURN_IMPL(SEED_CONCAT(_seed_result, __LINE__), lhs, rexpr)

#define SEED_ASSIGN_OR_RETURN_IMPL(result, lhs, rexpr) \
  auto result = (rexpr);                               \
  if (!result.ok()) return result.status();            \
  lhs = std::move(result).value();

#endif  // SEED_COMMON_MACROS_H_
