// Result<T>: value-or-Status, modeled after arrow::Result. A Result is
// either a T or a non-OK Status; it is never an OK Status without a value.

#ifndef SEED_COMMON_RESULT_H_
#define SEED_COMMON_RESULT_H_

#include <cassert>
#include <utility>
#include <variant>

#include "common/status.h"

namespace seed {

template <typename T>
class [[nodiscard]] Result {
 public:
  /// Constructs from a value (implicit, enables `return value;`).
  Result(T value) : repr_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Constructs from a non-OK status (implicit, enables `return status;`).
  Result(Status status) : repr_(std::move(status)) {  // NOLINT
    assert(!std::get<Status>(repr_).ok() &&
           "Result must not be constructed from an OK Status");
  }

  Result(const Result&) = default;
  Result(Result&&) noexcept = default;
  Result& operator=(const Result&) = default;
  Result& operator=(Result&&) noexcept = default;

  bool ok() const { return std::holds_alternative<T>(repr_); }
  explicit operator bool() const { return ok(); }

  /// Returns the status: OK if a value is held, the error otherwise.
  Status status() const {
    return ok() ? Status::OK() : std::get<Status>(repr_);
  }

  /// Value accessors; must only be called when ok().
  const T& value() const& {
    assert(ok());
    return std::get<T>(repr_);
  }
  T& value() & {
    assert(ok());
    return std::get<T>(repr_);
  }
  T&& value() && {
    assert(ok());
    return std::get<T>(std::move(repr_));
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the value, or `fallback` if this holds an error.
  T value_or(T fallback) const& { return ok() ? value() : fallback; }

 private:
  std::variant<Status, T> repr_;
};

}  // namespace seed

#endif  // SEED_COMMON_RESULT_H_
