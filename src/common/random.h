// Deterministic random source for workload generators and property tests.
// A thin wrapper over a fixed PRNG so results are reproducible across
// platforms and standard-library versions (std::uniform_int_distribution is
// not portable across implementations; we implement Lemire-style bounded
// draws ourselves).

#ifndef SEED_COMMON_RANDOM_H_
#define SEED_COMMON_RANDOM_H_

#include <cstdint>
#include <string>
#include <vector>

namespace seed {

/// SplitMix64-seeded xorshift*; small, fast, reproducible.
class Random {
 public:
  explicit Random(std::uint64_t seed = 0x5EED) {
    // SplitMix64 scramble so nearby seeds give unrelated streams.
    std::uint64_t z = seed + 0x9E3779B97f4A7C15ull;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    state_ = z ^ (z >> 31);
    if (state_ == 0) state_ = 0x5EEDull;
  }

  std::uint64_t NextU64() {
    state_ ^= state_ >> 12;
    state_ ^= state_ << 25;
    state_ ^= state_ >> 27;
    return state_ * 0x2545F4914F6CDD1Dull;
  }

  /// Uniform in [0, bound); bound must be > 0.
  std::uint64_t Uniform(std::uint64_t bound) { return NextU64() % bound; }

  /// Uniform in [lo, hi] inclusive.
  std::int64_t UniformRange(std::int64_t lo, std::int64_t hi) {
    return lo + static_cast<std::int64_t>(
                    Uniform(static_cast<std::uint64_t>(hi - lo + 1)));
  }

  /// True with probability p (0..1).
  bool Bernoulli(double p) {
    return static_cast<double>(NextU64() >> 11) * (1.0 / 9007199254740992.0) <
           p;
  }

  double NextDouble() {
    return static_cast<double>(NextU64() >> 11) * (1.0 / 9007199254740992.0);
  }

  /// Random identifier of `len` chars starting with a letter.
  std::string Identifier(size_t len) {
    static const char kAlpha[] =
        "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ";
    static const char kAlnum[] =
        "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789_";
    std::string s;
    s.reserve(len);
    if (len == 0) return s;
    s.push_back(kAlpha[Uniform(sizeof(kAlpha) - 1)]);
    for (size_t i = 1; i < len; ++i) {
      s.push_back(kAlnum[Uniform(sizeof(kAlnum) - 1)]);
    }
    return s;
  }

  /// Picks a uniformly random element; `v` must be non-empty.
  template <typename T>
  const T& Pick(const std::vector<T>& v) {
    return v[Uniform(v.size())];
  }

 private:
  std::uint64_t state_;
};

}  // namespace seed

#endif  // SEED_COMMON_RANDOM_H_
