// Status: error propagation without exceptions, modeled after the
// arrow::Status / rocksdb::Status idiom. Every fallible SEED operation
// returns a Status (or a Result<T>, see result.h). Statuses are cheap to
// move, carry a code plus a human-readable message, and may carry a list
// of structured consistency violations (see violation.h usage in seed_core).

#ifndef SEED_COMMON_STATUS_H_
#define SEED_COMMON_STATUS_H_

#include <memory>
#include <string>
#include <string_view>
#include <utility>

namespace seed {

/// Canonical SEED error codes. Codes are stable and coarse; details live in
/// the message.
enum class StatusCode : int {
  kOk = 0,
  /// A schema element, object, relationship or version was not found.
  kNotFound = 1,
  /// An id or name is already in use.
  kAlreadyExists = 2,
  /// Malformed argument (bad name, bad cardinality range, null handle...).
  kInvalidArgument = 3,
  /// The requested operation would violate consistency information
  /// (class membership, maximum cardinalities, ACYCLIC, attached procedures).
  kConsistencyViolation = 4,
  /// The operation is structurally impossible in the current state
  /// (e.g. re-classifying outside the generalization hierarchy,
  /// updating inherited pattern data in an inheritor).
  kFailedPrecondition = 5,
  /// Storage layer I/O failure.
  kIoError = 6,
  /// Data on disk failed validation (checksum, magic, truncation).
  kCorruption = 7,
  /// Feature intentionally absent (mirrors the paper's prototype limits).
  kNotSupported = 8,
  /// Resource exhausted (buffer pool full of pinned pages, etc.).
  kResourceExhausted = 9,
  /// A write lock held by another client blocks this operation.
  kLockConflict = 10,
  /// Internal invariant broken; indicates a bug in SEED itself.
  kInternal = 11,
};

/// Returns the canonical lower-case name of a code, e.g. "consistency
/// violation".
std::string_view StatusCodeToString(StatusCode code);

/// A Status is either OK (the common case, represented by a null state so
/// that passing OK around is free) or an error with a code and message.
class Status {
 public:
  /// Constructs an OK status.
  Status() noexcept : state_(nullptr) {}

  Status(StatusCode code, std::string msg) {
    state_ = std::make_unique<State>(State{code, std::move(msg)});
  }

  Status(const Status& other) { CopyFrom(other); }
  Status& operator=(const Status& other) {
    if (this != &other) CopyFrom(other);
    return *this;
  }
  Status(Status&&) noexcept = default;
  Status& operator=(Status&&) noexcept = default;

  /// Factory helpers, one per code.
  static Status OK() { return Status(); }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status ConsistencyViolation(std::string msg) {
    return Status(StatusCode::kConsistencyViolation, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status NotSupported(std::string msg) {
    return Status(StatusCode::kNotSupported, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status LockConflict(std::string msg) {
    return Status(StatusCode::kLockConflict, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return state_ == nullptr; }
  explicit operator bool() const { return ok(); }

  StatusCode code() const { return ok() ? StatusCode::kOk : state_->code; }
  /// The error message; empty for OK.
  const std::string& message() const {
    static const std::string kEmpty;
    return ok() ? kEmpty : state_->msg;
  }

  bool IsNotFound() const { return code() == StatusCode::kNotFound; }
  bool IsAlreadyExists() const { return code() == StatusCode::kAlreadyExists; }
  bool IsInvalidArgument() const {
    return code() == StatusCode::kInvalidArgument;
  }
  bool IsConsistencyViolation() const {
    return code() == StatusCode::kConsistencyViolation;
  }
  bool IsFailedPrecondition() const {
    return code() == StatusCode::kFailedPrecondition;
  }
  bool IsIoError() const { return code() == StatusCode::kIoError; }
  bool IsCorruption() const { return code() == StatusCode::kCorruption; }
  bool IsNotSupported() const { return code() == StatusCode::kNotSupported; }
  bool IsResourceExhausted() const {
    return code() == StatusCode::kResourceExhausted;
  }
  bool IsLockConflict() const { return code() == StatusCode::kLockConflict; }
  bool IsInternal() const { return code() == StatusCode::kInternal; }

  /// "OK" or "<code>: <message>".
  std::string ToString() const;

  /// Returns a copy of this status with `context` prepended to the message,
  /// for adding call-site information while propagating.
  Status WithContext(std::string_view context) const;

  bool operator==(const Status& other) const {
    return code() == other.code() && message() == other.message();
  }

 private:
  struct State {
    StatusCode code;
    std::string msg;
  };

  void CopyFrom(const Status& other) {
    state_ = other.state_ ? std::make_unique<State>(*other.state_) : nullptr;
  }

  std::unique_ptr<State> state_;  // null iff OK
};

}  // namespace seed

#endif  // SEED_COMMON_STATUS_H_
