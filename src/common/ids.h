// Strongly typed identifiers. SEED keys schema elements and data items by
// small integer ids; typed wrappers prevent mixing an ObjectId with a
// ClassId at compile time while staying trivially copyable and hashable.

#ifndef SEED_COMMON_IDS_H_
#define SEED_COMMON_IDS_H_

#include <cstdint>
#include <functional>
#include <ostream>

namespace seed {

/// CRTP-free typed id: `Tag` disambiguates, `kInvalid` (0) means "no id".
template <typename Tag>
class TypedId {
 public:
  using underlying_type = std::uint64_t;

  constexpr TypedId() : raw_(0) {}
  constexpr explicit TypedId(underlying_type raw) : raw_(raw) {}

  constexpr underlying_type raw() const { return raw_; }
  constexpr bool valid() const { return raw_ != 0; }

  constexpr bool operator==(const TypedId&) const = default;
  constexpr auto operator<=>(const TypedId&) const = default;

  friend std::ostream& operator<<(std::ostream& os, TypedId id) {
    return os << id.raw_;
  }

 private:
  underlying_type raw_;
};

struct ClassIdTag {};
struct AssociationIdTag {};
struct RoleIdTag {};
struct ObjectIdTag {};
struct RelationshipIdTag {};
struct PageIdTag {};
struct TxnIdTag {};
struct ClientIdTag {};

/// Identifies an object class (including dependent classes) in a schema.
using ClassId = TypedId<ClassIdTag>;
/// Identifies an association (relationship class) in a schema.
using AssociationId = TypedId<AssociationIdTag>;
/// Identifies an object (independent or dependent) in the database.
using ObjectId = TypedId<ObjectIdTag>;
/// Identifies a relationship instance in the database.
using RelationshipId = TypedId<RelationshipIdTag>;
/// Identifies a page in a storage file.
using PageId = TypedId<PageIdTag>;
/// Identifies a transaction in the WAL / multiuser layer.
using TxnId = TypedId<TxnIdTag>;
/// Identifies a client session in the multiuser layer.
using ClientId = TypedId<ClientIdTag>;

/// Monotonic id generator; not thread-safe (SEED's core is single-user,
/// as in the paper; the multiuser layer serializes access at the server).
template <typename Id>
class IdGenerator {
 public:
  explicit IdGenerator(typename Id::underlying_type first = 1)
      : next_(first) {}

  Id Next() { return Id(next_++); }

  /// Ensures the generator will never re-issue `id` (used when loading
  /// persisted state).
  void ReserveThrough(Id id) {
    if (id.raw() >= next_) next_ = id.raw() + 1;
  }

  /// Hard-sets the next id, downward if necessary. Only for callers that
  /// manage disjoint id ranges themselves (the multiuser client pins its
  /// generator back into its own stripe after importing foreign items).
  void ResetTo(typename Id::underlying_type next) { next_ = next; }

  typename Id::underlying_type next_raw() const { return next_; }

 private:
  typename Id::underlying_type next_;
};

}  // namespace seed

namespace std {
template <typename Tag>
struct hash<seed::TypedId<Tag>> {
  size_t operator()(const seed::TypedId<Tag>& id) const noexcept {
    return std::hash<std::uint64_t>{}(id.raw());
  }
};
}  // namespace std

#endif  // SEED_COMMON_IDS_H_
