// Minimal leveled logger. SEED libraries log sparingly (storage recovery,
// multiuser server events); tests silence it by default.

#ifndef SEED_COMMON_LOGGING_H_
#define SEED_COMMON_LOGGING_H_

#include <sstream>
#include <string>

namespace seed {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// Process-wide minimum level; messages below it are dropped. The initial
/// level comes from the SEED_LOG_LEVEL environment variable
/// (debug|info|warn|error) and defaults to warn, keeping tests silent.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

/// Emits one line to stderr as "<UTC timestamp> [LEVEL] message".
void LogMessage(LogLevel level, const std::string& msg);

namespace internal {

class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine() { LogMessage(level_, stream_.str()); }

  template <typename T>
  LogLine& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace seed

#define SEED_LOG(level) \
  ::seed::internal::LogLine(::seed::LogLevel::k##level)

#endif  // SEED_COMMON_LOGGING_H_
