#include "version/version_manager.h"

#include <algorithm>

#include "common/macros.h"
#include "core/item_codec.h"
#include "obs/metrics.h"
#include "schema/schema_io.h"

namespace seed::version {

using core::ItemCodec;

VersionManager::VersionManager(core::Database* db) : db_(db) {}

void VersionManager::AddTransitionRule(std::string name,
                                       TransitionRule rule) {
  transition_rules_.emplace_back(std::move(name), std::move(rule));
}

void VersionManager::RemoveTransitionRule(const std::string& name) {
  transition_rules_.erase(
      std::remove_if(transition_rules_.begin(), transition_rules_.end(),
                     [&name](const auto& entry) {
                       return entry.first == name;
                     }),
      transition_rules_.end());
}

Status VersionManager::FreezeAs(const VersionId& id) {
  if (!id.valid()) return Status::InvalidArgument("invalid version id");
  if (records_.count(id) != 0) {
    return Status::AlreadyExists("version " + id.ToString());
  }

  // History-sensitive consistency: rules constrain the transition from the
  // predecessor version to the state being frozen.
  if (!transition_rules_.empty()) {
    std::unique_ptr<core::Database> predecessor;
    if (basis_.valid()) {
      SEED_ASSIGN_OR_RETURN(predecessor, MaterializeView(basis_));
    } else {
      predecessor = std::make_unique<core::Database>(db_->schema());
    }
    for (const auto& [name, rule] : transition_rules_) {
      Status s = rule(*predecessor, *db_);
      if (!s.ok()) {
        return Status::ConsistencyViolation(
            "transition rule '" + name + "' vetoed version " +
            id.ToString() + ": " + s.message());
      }
    }
  }
  VersionRecord rec;
  rec.id = id;
  rec.parent = basis_;
  rec.sequence = next_sequence_++;
  rec.schema_version = db_->schema()->version();

  if (schema_blobs_.find(rec.schema_version) == schema_blobs_.end()) {
    Encoder enc;
    schema::SchemaCodec::Encode(*db_->schema(), &enc);
    schema_blobs_[rec.schema_version] = std::string(
        reinterpret_cast<const char*>(enc.bytes().data()), enc.size());
  }

  const auto& objects = db_->objects_raw();
  for (ObjectId oid : db_->changed_objects()) {
    auto it = objects.find(oid);
    if (it == objects.end()) continue;  // vetoed creation
    rec.changes[ItemKey::Object(oid)] =
        ItemCodec::EncodeObjectToString(it->second);
  }
  const auto& rels = db_->relationships_raw();
  for (RelationshipId rid : db_->changed_relationships()) {
    auto it = rels.find(rid);
    if (it == rels.end()) continue;
    rec.changes[ItemKey::Relationship(rid)] =
        ItemCodec::EncodeRelationshipToString(it->second);
  }

  records_[id] = std::move(rec);
  db_->ClearChangeTracking();
  basis_ = id;
  static obs::Counter* created = obs::MetricsRegistry::Global().GetCounter(
      "version.versions.created.total");
  created->Increment();
  return Status::OK();
}

Result<VersionId> VersionManager::CreateVersion() {
  VersionId candidate =
      basis_.valid() ? basis_.IncrementLast() : VersionId({1, 0});
  if (records_.count(candidate) != 0) {
    // The successor already exists (we branched off a historical version):
    // find the first free child of the basis.
    std::uint32_t n = 1;
    do {
      candidate = basis_.Child(n++);
    } while (records_.count(candidate) != 0);
  }
  SEED_RETURN_IF_ERROR(FreezeAs(candidate));
  return candidate;
}

Status VersionManager::CreateVersion(const VersionId& id) {
  return FreezeAs(id);
}

std::vector<VersionId> VersionManager::AllVersions() const {
  std::vector<VersionId> out;
  out.reserve(records_.size());
  for (const auto& [id, rec] : records_) out.push_back(id);
  return out;
}

bool VersionManager::HasVersion(const VersionId& id) const {
  return records_.count(id) != 0;
}

Result<const VersionRecord*> VersionManager::GetRecord(
    const VersionId& id) const {
  auto it = records_.find(id);
  if (it == records_.end()) {
    return Status::NotFound("version " + id.ToString());
  }
  return &it->second;
}

Result<VersionId> VersionManager::ParentOf(const VersionId& id) const {
  SEED_ASSIGN_OR_RETURN(const VersionRecord* rec, GetRecord(id));
  return rec->parent;
}

std::vector<VersionId> VersionManager::ChildrenOf(const VersionId& id) const {
  std::vector<VersionId> out;
  for (const auto& [vid, rec] : records_) {
    if (rec.parent == id) out.push_back(vid);
  }
  return out;
}

std::uint64_t VersionManager::StoredBytes() const {
  std::uint64_t total = 0;
  for (const auto& [id, rec] : records_) {
    for (const auto& [key, payload] : rec.changes) {
      total += payload.size();
    }
  }
  return total;
}

Result<std::vector<const VersionRecord*>> VersionManager::PathTo(
    const VersionId& id) const {
  std::vector<const VersionRecord*> path;
  VersionId cur = id;
  while (cur.valid()) {
    auto it = records_.find(cur);
    if (it == records_.end()) {
      return Status::NotFound("version " + cur.ToString() +
                              " missing from history");
    }
    path.push_back(&it->second);
    cur = it->second.parent;
    if (path.size() > records_.size()) {
      return Status::Internal("cycle in version history");
    }
  }
  std::reverse(path.begin(), path.end());
  return path;
}

Result<std::unique_ptr<core::Database>> VersionManager::MaterializeView(
    const VersionId& id) const {
  SEED_ASSIGN_OR_RETURN(auto path, PathTo(id));

  // Resolve the effective payload of every item along the path.
  std::map<ItemKey, const std::string*> effective;
  for (const VersionRecord* rec : path) {
    for (const auto& [key, payload] : rec->changes) {
      effective[key] = &payload;
    }
  }

  // Decode under the schema the version was created with.
  std::uint64_t schema_version = path.back()->schema_version;
  auto blob_it = schema_blobs_.find(schema_version);
  if (blob_it == schema_blobs_.end()) {
    return Status::Corruption("schema version " +
                              std::to_string(schema_version) +
                              " missing from version store");
  }
  Decoder schema_dec(blob_it->second.data(), blob_it->second.size());
  SEED_ASSIGN_OR_RETURN(schema::SchemaPtr schema,
                        schema::SchemaCodec::Decode(&schema_dec));

  auto view = std::make_unique<core::Database>(schema);
  for (const auto& [key, payload] : effective) {
    if (key.kind() == ItemKey::kObject) {
      SEED_ASSIGN_OR_RETURN(core::ObjectItem obj,
                            ItemCodec::DecodeObjectFromString(*payload));
      view->RestoreObject(std::move(obj));
    } else {
      SEED_ASSIGN_OR_RETURN(
          core::RelationshipItem rel,
          ItemCodec::DecodeRelationshipFromString(*payload));
      view->RestoreRelationship(std::move(rel));
    }
  }
  view->RebuildIndexes();
  view->ClearChangeTracking();
  return view;
}

Result<std::shared_ptr<const core::Database>> VersionManager::PinView(
    const VersionId& id) const {
  auto it = pinned_views_.find(id);
  if (it != pinned_views_.end()) {
    if (auto live = it->second.lock()) {
      static obs::Counter* hits = obs::MetricsRegistry::Global().GetCounter(
          "version.view_pins.cached.total");
      hits->Increment();
      return live;
    }
  }
  SEED_ASSIGN_OR_RETURN(auto view, MaterializeView(id));
  std::shared_ptr<const core::Database> shared = std::move(view);
  pinned_views_[id] = shared;
  static obs::Counter* pins = obs::MetricsRegistry::Global().GetCounter(
      "version.view_pins.total");
  pins->Increment();
  return shared;
}

Status VersionManager::SelectVersion(const VersionId& id) {
  SEED_ASSIGN_OR_RETURN(auto view, MaterializeView(id));
  // Replace the working state. Id watermarks must keep growing past every
  // id ever issued, so versions never collide on item ids.
  std::uint64_t next_obj = db_->object_ids().next_raw();
  std::uint64_t next_rel = db_->relationship_ids().next_raw();
  db_->ResetSchemaTrusted(view->schema());
  db_->ClearContents();
  for (const auto& [oid, obj] : view->objects_raw()) {
    db_->RestoreObject(obj);
  }
  for (const auto& [rid, rel] : view->relationships_raw()) {
    db_->RestoreRelationship(rel);
  }
  db_->RebuildIndexes();
  db_->object_ids().ReserveThrough(ObjectId(next_obj - 1));
  db_->relationship_ids().ReserveThrough(RelationshipId(next_rel - 1));
  db_->ClearChangeTracking();
  basis_ = id;
  static obs::Counter* restores = obs::MetricsRegistry::Global().GetCounter(
      "version.restores.total");
  restores->Increment();
  return Status::OK();
}

Result<std::vector<HistoryHit>> VersionManager::VersionsOfObject(
    ObjectId id, const VersionId& from) const {
  std::vector<HistoryHit> out;
  ItemKey key = ItemKey::Object(id);
  for (const auto& [vid, rec] : records_) {
    if (from.valid() && vid < from) continue;
    auto it = rec.changes.find(key);
    if (it == rec.changes.end()) continue;
    auto obj = ItemCodec::DecodeObjectFromString(it->second);
    if (!obj.ok()) return obj.status();
    out.push_back(HistoryHit{vid, obj->deleted});
  }
  return out;
}

Result<std::vector<HistoryHit>> VersionManager::VersionsOfObject(
    std::string_view name, const VersionId& from) const {
  // Resolve the name in the current working state first; if the object no
  // longer exists there, search the newest state of each version.
  auto id = db_->FindObjectByName(name);
  if (id.ok()) return VersionsOfObject(*id, from);

  for (auto it = records_.rbegin(); it != records_.rend(); ++it) {
    auto view = MaterializeView(it->first);
    if (!view.ok()) return view.status();
    auto vid = (*view)->FindObjectByName(name);
    if (vid.ok()) return VersionsOfObject(*vid, from);
  }
  return Status::NotFound("object '" + std::string(name) +
                          "' not found in any version");
}

Status VersionManager::DeleteVersion(const VersionId& id) {
  auto it = records_.find(id);
  if (it == records_.end()) {
    return Status::NotFound("version " + id.ToString());
  }
  if (id == basis_) {
    return Status::FailedPrecondition(
        "version " + id.ToString() +
        " is the basis of the current working state");
  }
  if (!ChildrenOf(id).empty()) {
    return Status::FailedPrecondition(
        "version " + id.ToString() +
        " has successors; delete them first");
  }
  records_.erase(it);
  pinned_views_.erase(id);
  return Status::OK();
}

}  // namespace seed::version
