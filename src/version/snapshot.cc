#include "version/snapshot.h"

namespace seed::version {

SnapshotPtr Snapshot::Capture(const core::Database& source,
                              std::uint64_t epoch) {
  auto db = std::make_unique<core::Database>(source.schema());
  // Raw item states, tombstones included: a snapshot must replay the
  // master byte-for-byte (deleted markers drive version history and keep
  // id generators from re-issuing), not just its live view.
  for (const auto& [id, obj] : source.objects_raw()) {
    db->RestoreObject(obj);
  }
  for (const auto& [id, rel] : source.relationships_raw()) {
    db->RestoreRelationship(rel);
  }
  db->RebuildIndexes();
  // Re-create attribute indexes from their specs; each backfills from the
  // restored items, so probe-served queries plan identically on the
  // snapshot and on the master.
  for (const auto& idx : source.attribute_indexes().indexes()) {
    (void)db->CreateAttributeIndex(idx->spec());
  }
  // Readers never check in, so the copy's change tracking is noise.
  db->ClearChangeTracking();
  return SnapshotPtr(new Snapshot(std::move(db), epoch));
}

}  // namespace seed::version
