// Immutable, refcounted database snapshots — the MVCC substrate for the
// multiuser server's snapshot reads.
//
// A Snapshot owns a frozen copy of a database at one instant, tagged with
// a monotonically increasing epoch. It is published as a
// shared_ptr<const Snapshot>: pinning is a refcount bump, readers run
// whole query workloads against the frozen state without ever touching a
// writer's lock, and the copy is freed when the last pin drops. Capture
// itself is the only expensive step (a full structural clone), so the
// server captures once per commit and every reader shares the result.

#ifndef SEED_VERSION_SNAPSHOT_H_
#define SEED_VERSION_SNAPSHOT_H_

#include <cstdint>
#include <memory>

#include "core/database.h"

namespace seed::version {

class Snapshot;
using SnapshotPtr = std::shared_ptr<const Snapshot>;

class Snapshot {
 public:
  /// Freezes a full copy of `source`: raw item states (tombstones
  /// included, so id spaces and audits replay exactly), attribute-index
  /// definitions, and rebuilt retrieval maps. The caller must serialize
  /// with writers of `source` — typically by capturing under the master
  /// mutex; the returned snapshot itself is immutable and safe to read
  /// from any number of threads concurrently.
  static SnapshotPtr Capture(const core::Database& source,
                             std::uint64_t epoch);

  const core::Database& database() const { return *db_; }
  std::uint64_t epoch() const { return epoch_; }

  size_t num_objects() const { return db_->num_live_objects(); }
  size_t num_relationships() const { return db_->num_live_relationships(); }

  Snapshot(const Snapshot&) = delete;
  Snapshot& operator=(const Snapshot&) = delete;

 private:
  Snapshot(std::unique_ptr<core::Database> db, std::uint64_t epoch)
      : db_(std::move(db)), epoch_(epoch) {}

  std::unique_ptr<core::Database> db_;
  std::uint64_t epoch_;
};

/// The snapshot's database as a shared pointer that keeps the whole
/// snapshot pinned (aliasing constructor). Hand this to the query entry
/// points' shared_ptr overloads so a running query can never outlive the
/// frozen state it reads.
inline std::shared_ptr<const core::Database> PinDatabase(SnapshotPtr snap) {
  const core::Database* db = &snap->database();
  return std::shared_ptr<const core::Database>(std::move(snap), db);
}

}  // namespace seed::version

#endif  // SEED_VERSION_SNAPSHOT_H_
