#include "version/version_id.h"

#include "common/macros.h"
#include "common/strings.h"

namespace seed::version {

Result<VersionId> VersionId::Parse(std::string_view s) {
  if (s.empty()) return Status::InvalidArgument("empty version id");
  std::vector<std::uint32_t> components;
  for (const std::string& part : strings::Split(s, '.')) {
    if (part.empty()) {
      return Status::InvalidArgument("bad version id '" + std::string(s) +
                                     "'");
    }
    std::uint64_t v = 0;
    for (char c : part) {
      if (c < '0' || c > '9') {
        return Status::InvalidArgument("bad version id '" + std::string(s) +
                                       "'");
      }
      v = v * 10 + static_cast<std::uint64_t>(c - '0');
      if (v > 0xFFFFFFFFull) {
        return Status::InvalidArgument("version component overflow in '" +
                                       std::string(s) + "'");
      }
    }
    components.push_back(static_cast<std::uint32_t>(v));
  }
  return VersionId(std::move(components));
}

std::string VersionId::ToString() const {
  if (!valid()) return "<none>";
  std::string out;
  for (size_t i = 0; i < components_.size(); ++i) {
    if (i > 0) out += '.';
    out += std::to_string(components_[i]);
  }
  return out;
}

VersionId VersionId::IncrementLast() const {
  std::vector<std::uint32_t> c = components_;
  if (c.empty()) return VersionId({1, 0});
  ++c.back();
  return VersionId(std::move(c));
}

VersionId VersionId::Child(std::uint32_t component) const {
  std::vector<std::uint32_t> c = components_;
  c.push_back(component);
  return VersionId(std::move(c));
}

void VersionId::EncodeTo(Encoder* enc) const {
  enc->PutVarint(components_.size());
  for (std::uint32_t c : components_) enc->PutU32(c);
}

Result<VersionId> VersionId::Decode(Decoder* dec) {
  SEED_ASSIGN_OR_RETURN(std::uint64_t n, dec->GetVarint());
  std::vector<std::uint32_t> components;
  components.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    SEED_ASSIGN_OR_RETURN(std::uint32_t c, dec->GetU32());
    components.push_back(c);
  }
  return VersionId(std::move(components));
}

}  // namespace seed::version
