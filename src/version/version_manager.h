// Version management (paper, "Versions and Variants").
//
// Versions are explicit snapshots of the database: "When creating a version
// we do not save the complete database. We only store those objects and
// relationships that have been changed after the creation of the previous
// version. Items that have been deleted in this interval must also be
// recorded. This is made easy by marking items as deleted instead of
// removing them physically."
//
// The current (mutable) state lives in the attached Database; CreateVersion
// freezes the changed set under a new decimal id whose tree parent is the
// current basis. Alternatives branch by SelectVersion(historical) followed
// by updates and a new CreateVersion. Versions are immutable except for
// deletion. Each version records the schema version it was created under.

#ifndef SEED_VERSION_VERSION_MANAGER_H_
#define SEED_VERSION_VERSION_MANAGER_H_

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/database.h"
#include "version/version_id.h"

namespace seed::version {

/// Namespaced item key: objects and relationships share one delta map.
struct ItemKey {
  enum Kind : std::uint8_t { kObject = 2, kRelationship = 3 };
  std::uint64_t packed = 0;

  static ItemKey Object(ObjectId id) {
    return ItemKey{(static_cast<std::uint64_t>(kObject) << 56) | id.raw()};
  }
  static ItemKey Relationship(RelationshipId id) {
    return ItemKey{(static_cast<std::uint64_t>(kRelationship) << 56) |
                   id.raw()};
  }
  Kind kind() const { return static_cast<Kind>(packed >> 56); }
  std::uint64_t id_raw() const { return packed & 0x00FFFFFFFFFFFFFFull; }

  bool operator==(const ItemKey&) const = default;
  auto operator<=>(const ItemKey&) const = default;
};

/// One frozen version: parent link, creation sequence, schema version, and
/// the encoded states of every item changed since the parent.
struct VersionRecord {
  VersionId id;
  VersionId parent;  // invalid for the first version
  std::uint64_t sequence = 0;
  std::uint64_t schema_version = 0;
  /// Item key -> encoded item state (tombstoned items carry deleted=true).
  std::map<ItemKey, std::string> changes;
};

/// A hit in history navigation: the version and the item's encoded state.
struct HistoryHit {
  VersionId version;
  bool deleted = false;
};

/// History-sensitive consistency rule (paper, open problems: "rules that
/// impose constraints for the transition from a given version to its
/// successor"). Runs when a version is created, with the predecessor's view
/// and the state being frozen; a non-OK status vetoes version creation.
/// The predecessor is an empty database for the first version.
using TransitionRule = std::function<Status(
    const core::Database& predecessor, const core::Database& successor)>;

class VersionManager {
 public:
  /// Attaches to a live database. The manager consumes the database's
  /// change tracking; other writers must not clear it.
  explicit VersionManager(core::Database* db);

  core::Database* database() { return db_; }

  /// Version the next CreateVersion() will be a child of (the version the
  /// current working state is based on; invalid before the first version).
  const VersionId& current_basis() const { return basis_; }

  // --- Version creation ---------------------------------------------------

  /// Freezes the current changed set under an automatically numbered id:
  /// successor of the basis (last component + 1), or the first free branch
  /// child if that id is taken ("1.0" -> "1.1", branching "1.0" -> "1.0.1").
  Result<VersionId> CreateVersion();

  /// Same with an explicit fresh id (paper-style numbering, e.g. "2.0").
  Status CreateVersion(const VersionId& id);

  // --- History-sensitive consistency rules ----------------------------------

  /// Registers a transition rule under `name` (extension of the paper's
  /// open-problems sketch). All rules run on every CreateVersion; any veto
  /// aborts the freeze and leaves the working state untouched.
  void AddTransitionRule(std::string name, TransitionRule rule);
  void RemoveTransitionRule(const std::string& name);
  size_t num_transition_rules() const { return transition_rules_.size(); }

  // --- Alternatives -------------------------------------------------------

  /// Replaces the current working state with the view to `id` (the paper's
  /// alternative mechanism: select a historical version, update, save).
  /// Unsaved changes in the working state are discarded.
  Status SelectVersion(const VersionId& id);

  // --- Introspection --------------------------------------------------------

  std::vector<VersionId> AllVersions() const;
  bool HasVersion(const VersionId& id) const;
  Result<const VersionRecord*> GetRecord(const VersionId& id) const;
  Result<VersionId> ParentOf(const VersionId& id) const;
  std::vector<VersionId> ChildrenOf(const VersionId& id) const;
  size_t num_versions() const { return records_.size(); }

  /// Total bytes of stored delta payloads (for the Fig. 4 benchmark's
  /// delta-vs-full-copy comparison).
  std::uint64_t StoredBytes() const;

  // --- Views -----------------------------------------------------------------

  /// Materializes the read-only view to version `id`: items with the
  /// greatest version on the ancestor path <= id, minus tombstones. The
  /// view is built under the schema recorded for that version.
  Result<std::unique_ptr<core::Database>> MaterializeView(
      const VersionId& id) const;

  /// Refcounted variant of MaterializeView: the first pin of a version
  /// materializes it once and caches a weak reference, so further pins
  /// while any reader still holds the view are a refcount bump, not a
  /// rebuild. Versions are immutable, so a cached view never goes stale;
  /// DeleteVersion drops the cache entry. Not thread-safe — callers
  /// serialize access to the manager as with every other method.
  Result<std::shared_ptr<const core::Database>> PinView(
      const VersionId& id) const;

  // --- History retrieval ("find all versions of object X, from 2.0") ---------

  /// All versions in which the object changed, ascending, optionally
  /// starting at `from`.
  Result<std::vector<HistoryHit>> VersionsOfObject(
      std::string_view name, const VersionId& from = VersionId()) const;
  Result<std::vector<HistoryHit>> VersionsOfObject(
      ObjectId id, const VersionId& from = VersionId()) const;

  // --- Deletion --------------------------------------------------------------

  /// Versions cannot be modified, only deleted. A version with children or
  /// serving as the current basis cannot be deleted.
  Status DeleteVersion(const VersionId& id);

 private:
  friend class VersionPersistence;

  /// Chain of records from the root to `id` (inclusive).
  Result<std::vector<const VersionRecord*>> PathTo(const VersionId& id) const;

  Status FreezeAs(const VersionId& id);

  core::Database* db_;
  VersionId basis_;
  std::vector<std::pair<std::string, TransitionRule>> transition_rules_;
  std::uint64_t next_sequence_ = 1;
  std::map<VersionId, VersionRecord> records_;
  /// Schema bytes by schema version, so old views decode under old schemas.
  std::unordered_map<std::uint64_t, std::string> schema_blobs_;
  /// Weak cache of pinned views; entries outlive their last strong pin
  /// only as expired weak_ptrs, repopulated on the next pin.
  mutable std::map<VersionId, std::weak_ptr<const core::Database>>
      pinned_views_;
};

}  // namespace seed::version

#endif  // SEED_VERSION_VERSION_MANAGER_H_
