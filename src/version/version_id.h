// Decimal version classification (paper: "Versions are identified by a
// decimal classification. The classification tree reflects the version
// history."). A VersionId is a non-empty sequence of numeric components,
// rendered "2.0" or "1.0.1". Ordering is lexicographic on components,
// which matches numeric order on linear histories.

#ifndef SEED_VERSION_VERSION_ID_H_
#define SEED_VERSION_VERSION_ID_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/coding.h"
#include "common/result.h"

namespace seed::version {

class VersionId {
 public:
  /// The invalid ("no version yet") id.
  VersionId() = default;
  explicit VersionId(std::vector<std::uint32_t> components)
      : components_(std::move(components)) {}

  static Result<VersionId> Parse(std::string_view s);

  bool valid() const { return !components_.empty(); }
  const std::vector<std::uint32_t>& components() const { return components_; }
  size_t depth() const { return components_.size(); }

  /// "1.0", "2.0", "1.0.1"; "<none>" when invalid.
  std::string ToString() const;

  /// Same id with the last component incremented (successor on the same
  /// branch level).
  VersionId IncrementLast() const;
  /// This id with `component` appended (first child on a new branch level).
  VersionId Child(std::uint32_t component) const;

  bool operator==(const VersionId&) const = default;
  auto operator<=>(const VersionId&) const = default;

  void EncodeTo(Encoder* enc) const;
  static Result<VersionId> Decode(Decoder* dec);

 private:
  std::vector<std::uint32_t> components_;
};

}  // namespace seed::version

namespace std {
template <>
struct hash<seed::version::VersionId> {
  size_t operator()(const seed::version::VersionId& v) const noexcept {
    size_t h = 0xcbf29ce484222325ull;
    for (uint32_t c : v.components()) {
      h ^= c;
      h *= 0x100000001b3ull;
    }
    return h;
  }
};
}  // namespace std

#endif  // SEED_VERSION_VERSION_ID_H_
