#include "version/version_io.h"

#include "common/macros.h"

namespace seed::version {

namespace {

std::string EncodeRecord(const VersionRecord& rec) {
  Encoder enc;
  rec.id.EncodeTo(&enc);
  rec.parent.EncodeTo(&enc);
  enc.PutU64(rec.sequence);
  enc.PutU64(rec.schema_version);
  enc.PutVarint(rec.changes.size());
  for (const auto& [key, payload] : rec.changes) {
    enc.PutU64(key.packed);
    enc.PutString(payload);
  }
  return std::string(reinterpret_cast<const char*>(enc.bytes().data()),
                     enc.size());
}

Result<VersionRecord> DecodeRecord(std::string_view bytes) {
  Decoder dec(bytes.data(), bytes.size());
  VersionRecord rec;
  SEED_ASSIGN_OR_RETURN(rec.id, VersionId::Decode(&dec));
  SEED_ASSIGN_OR_RETURN(rec.parent, VersionId::Decode(&dec));
  SEED_ASSIGN_OR_RETURN(rec.sequence, dec.GetU64());
  SEED_ASSIGN_OR_RETURN(rec.schema_version, dec.GetU64());
  SEED_ASSIGN_OR_RETURN(std::uint64_t n, dec.GetVarint());
  for (std::uint64_t i = 0; i < n; ++i) {
    SEED_ASSIGN_OR_RETURN(std::uint64_t packed, dec.GetU64());
    SEED_ASSIGN_OR_RETURN(std::string payload, dec.GetString());
    rec.changes[ItemKey{packed}] = std::move(payload);
  }
  return rec;
}

}  // namespace

Status VersionPersistence::Save(const VersionManager& vm,
                                storage::KvStore* kv) {
  // Remove stale record keys (versions deleted since the last save).
  std::vector<std::uint64_t> stale;
  std::unordered_set<std::uint64_t> live_sequences;
  for (const auto& [id, rec] : vm.records_) live_sequences.insert(rec.sequence);
  SEED_RETURN_IF_ERROR(kv->Scan([&](std::uint64_t key, std::string_view) {
    if ((key >> 56) == 4 &&
        live_sequences.count(key & 0x00FFFFFFFFFFFFFFull) == 0) {
      stale.push_back(key);
    }
  }));
  for (std::uint64_t key : stale) {
    SEED_RETURN_IF_ERROR(kv->Delete(key));
  }

  for (const auto& [id, rec] : vm.records_) {
    SEED_RETURN_IF_ERROR(
        kv->Put(RecordKey(rec.sequence), EncodeRecord(rec)));
  }
  for (const auto& [sv, blob] : vm.schema_blobs_) {
    SEED_RETURN_IF_ERROR(kv->Put(SchemaBlobKey(sv), blob));
  }
  Encoder state;
  vm.basis_.EncodeTo(&state);
  state.PutU64(vm.next_sequence_);
  return kv->Put(StateKey(),
                 std::string_view(
                     reinterpret_cast<const char*>(state.bytes().data()),
                     state.size()));
}

Status VersionPersistence::Load(VersionManager* vm, storage::KvStore* kv) {
  vm->records_.clear();
  vm->schema_blobs_.clear();

  Status inner = Status::OK();
  SEED_RETURN_IF_ERROR(
      kv->Scan([&](std::uint64_t key, std::string_view bytes) {
        if (!inner.ok()) return;
        std::uint64_t tag = key >> 56;
        if (tag == 4) {
          auto rec = DecodeRecord(bytes);
          if (!rec.ok()) {
            inner = rec.status();
            return;
          }
          VersionId id = rec->id;
          vm->records_[id] = std::move(*rec);
        } else if (tag == 5) {
          vm->schema_blobs_[key & 0x00FFFFFFFFFFFFFFull] =
              std::string(bytes);
        }
      }));
  SEED_RETURN_IF_ERROR(inner);

  auto state = kv->Get(StateKey());
  if (state.ok()) {
    Decoder dec(state->data(), state->size());
    SEED_ASSIGN_OR_RETURN(vm->basis_, VersionId::Decode(&dec));
    SEED_ASSIGN_OR_RETURN(vm->next_sequence_, dec.GetU64());
  } else if (!state.status().IsNotFound()) {
    return state.status();
  }
  return Status::OK();
}

}  // namespace seed::version
