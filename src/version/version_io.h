// Persistence of the version store through the KvStore.
//
// Key layout (shared u64 key space with core::Persistence, which uses tags
// 1-3): tag 4 holds version records keyed by creation sequence, tag 5 holds
// schema blobs keyed by schema version, and the manager's own state (basis,
// next sequence) lives at tag 1 id 1.

#ifndef SEED_VERSION_VERSION_IO_H_
#define SEED_VERSION_VERSION_IO_H_

#include "common/result.h"
#include "storage/kv_store.h"
#include "version/version_manager.h"

namespace seed::version {

class VersionPersistence {
 public:
  /// Writes the whole version store (records are immutable, so rewriting
  /// them is idempotent; deleted versions disappear from the store on the
  /// next Save because keys are re-derived from live records).
  static Status Save(const VersionManager& vm, storage::KvStore* kv);

  /// Restores a manager's records into `vm` (which must be freshly
  /// constructed on the already-loaded database).
  static Status Load(VersionManager* vm, storage::KvStore* kv);

  static std::uint64_t RecordKey(std::uint64_t sequence) {
    return (4ull << 56) | sequence;
  }
  static std::uint64_t SchemaBlobKey(std::uint64_t schema_version) {
    return (5ull << 56) | schema_version;
  }
  static std::uint64_t StateKey() { return (1ull << 56) | 1; }
};

}  // namespace seed::version

#endif  // SEED_VERSION_VERSION_IO_H_
