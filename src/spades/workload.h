// Deterministic specification-session workload, runnable against any
// SpecTool implementation. Models the paper's development narrative at
// scale: vague entries first, progressive refinement, dataflows, action
// nesting, descriptions, and interleaved retrieval.

#ifndef SEED_SPADES_WORKLOAD_H_
#define SEED_SPADES_WORKLOAD_H_

#include <cstdint>

#include "common/result.h"
#include "spades/spec_tool.h"

namespace seed::spades {

struct SessionParams {
  std::size_t num_actions = 50;
  std::size_t num_data = 50;
  /// Fraction of data items first entered vaguely as Things.
  double vague_fraction = 0.5;
  std::size_t flows_per_action = 3;
  std::size_t num_queries = 100;
  std::uint64_t seed = 42;
};

struct SessionStats {
  std::uint64_t mutations = 0;
  std::uint64_t queries = 0;
  std::uint64_t incomplete_findings = 0;
};

/// Runs one full session; every operation must succeed (the stream is
/// constructed to be consistent under the Fig. 3 schema).
Result<SessionStats> RunSession(SpecTool* tool, const SessionParams& params);

}  // namespace seed::spades

#endif  // SEED_SPADES_WORKLOAD_H_
