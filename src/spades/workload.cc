#include "spades/workload.h"

#include <string>
#include <vector>

#include "common/macros.h"
#include "common/random.h"

namespace seed::spades {

Result<SessionStats> RunSession(SpecTool* tool,
                                const SessionParams& params) {
  SessionStats stats;
  Random rng(params.seed);

  std::vector<std::string> actions;
  std::vector<std::string> data;
  actions.reserve(params.num_actions);
  data.reserve(params.num_data);

  // 1. Actions.
  for (std::size_t i = 0; i < params.num_actions; ++i) {
    actions.push_back("Action_" + std::to_string(i));
    SEED_RETURN_IF_ERROR(tool->AddAction(actions.back()));
    ++stats.mutations;
  }

  // 2. Data items; a fraction enters vaguely as Things.
  std::vector<bool> was_vague(params.num_data, false);
  for (std::size_t i = 0; i < params.num_data; ++i) {
    data.push_back("Data_" + std::to_string(i));
    if (rng.Bernoulli(params.vague_fraction)) {
      was_vague[i] = true;
      SEED_RETURN_IF_ERROR(tool->AddThing(data.back()));
    } else {
      SEED_RETURN_IF_ERROR(tool->AddData(data.back()));
    }
    ++stats.mutations;
  }

  // 3. The vague things become data (knowledge got more precise).
  for (std::size_t i = 0; i < params.num_data; ++i) {
    if (!was_vague[i]) continue;
    SEED_RETURN_IF_ERROR(tool->RefineThingToData(data[i]));
    ++stats.mutations;
  }

  // 4. Vague flows: distinct (action, data) pairs by construction.
  struct FlowRef {
    std::size_t action;
    std::size_t data;
  };
  std::vector<FlowRef> flows;
  for (std::size_t a = 0; a < params.num_actions; ++a) {
    for (std::size_t j = 0;
         j < params.flows_per_action && j < params.num_data; ++j) {
      std::size_t d = (a * 7 + j * 13) % params.num_data;
      bool duplicate = false;
      for (const FlowRef& f : flows) {
        if (f.action == a && f.data == d) {
          duplicate = true;
          break;
        }
      }
      if (duplicate) continue;
      SEED_RETURN_IF_ERROR(
          tool->AddFlow(actions[a], data[d], FlowKind::kUnknown));
      flows.push_back(FlowRef{a, d});
      ++stats.mutations;
    }
  }

  // 5. Data items touched by flows get refined to input (even index) or
  //    output (odd index); their flows are then specialized accordingly.
  std::vector<bool> data_refined(params.num_data, false);
  for (const FlowRef& f : flows) {
    if (data_refined[f.data]) continue;
    data_refined[f.data] = true;
    if (f.data % 2 == 0) {
      SEED_RETURN_IF_ERROR(tool->RefineDataToInput(data[f.data]));
    } else {
      SEED_RETURN_IF_ERROR(tool->RefineDataToOutput(data[f.data]));
    }
    ++stats.mutations;
  }
  for (const FlowRef& f : flows) {
    SEED_RETURN_IF_ERROR(tool->RefineFlow(
        actions[f.action], data[f.data],
        f.data % 2 == 0 ? FlowKind::kRead : FlowKind::kWrite));
    ++stats.mutations;
  }

  // 6. Containment tree over actions.
  for (std::size_t a = 1; a < params.num_actions; ++a) {
    SEED_RETURN_IF_ERROR(tool->Contain(actions[(a - 1) / 2], actions[a]));
    ++stats.mutations;
  }

  // 7. Descriptions.
  for (std::size_t a = 0; a < params.num_actions; ++a) {
    SEED_RETURN_IF_ERROR(tool->SetDescription(
        actions[a], "Handles step " + std::to_string(a) +
                        " of the alarm processing pipeline"));
    ++stats.mutations;
  }

  // 8. Interleaved retrieval.
  for (std::size_t q = 0; q < params.num_queries; ++q) {
    switch (q % 3) {
      case 0: {
        auto r = tool->DataReadBy(actions[q % params.num_actions]);
        SEED_RETURN_IF_ERROR(r.status());
        break;
      }
      case 1: {
        auto r = tool->ActionsAccessing(data[q % params.num_data]);
        SEED_RETURN_IF_ERROR(r.status());
        break;
      }
      default: {
        auto r = tool->GetDescription(actions[q % params.num_actions]);
        SEED_RETURN_IF_ERROR(r.status());
        break;
      }
    }
    ++stats.queries;
  }

  // 9. Final completeness check (free for the direct tool, a real scan for
  //    SEED).
  SEED_ASSIGN_OR_RETURN(stats.incomplete_findings, tool->CountIncomplete());
  return stats;
}

}  // namespace seed::spades
