#include "spades/spec_tool.h"

#include <algorithm>

#include "common/macros.h"

namespace seed::spades {

// --- SeedSpecTool ------------------------------------------------------------

Result<std::unique_ptr<SeedSpecTool>> SeedSpecTool::Create() {
  SEED_ASSIGN_OR_RETURN(Fig3Schema fig3, BuildFig3Schema());
  auto db = std::make_unique<core::Database>(fig3.schema);
  return std::unique_ptr<SeedSpecTool>(
      new SeedSpecTool(std::move(db), fig3.ids));
}

Status SeedSpecTool::AddThing(const std::string& name) {
  return db_->CreateObject(ids_.thing, name).status();
}

Status SeedSpecTool::AddData(const std::string& name) {
  return db_->CreateObject(ids_.data, name).status();
}

Status SeedSpecTool::AddAction(const std::string& name) {
  return db_->CreateObject(ids_.action, name).status();
}

Status SeedSpecTool::RefineThingToData(const std::string& name) {
  SEED_ASSIGN_OR_RETURN(ObjectId id, db_->FindObjectByName(name));
  return db_->Reclassify(id, ids_.data);
}

Status SeedSpecTool::RefineThingToAction(const std::string& name) {
  SEED_ASSIGN_OR_RETURN(ObjectId id, db_->FindObjectByName(name));
  return db_->Reclassify(id, ids_.action);
}

Status SeedSpecTool::RefineDataToInput(const std::string& name) {
  SEED_ASSIGN_OR_RETURN(ObjectId id, db_->FindObjectByName(name));
  return db_->Reclassify(id, ids_.input_data);
}

Status SeedSpecTool::RefineDataToOutput(const std::string& name) {
  SEED_ASSIGN_OR_RETURN(ObjectId id, db_->FindObjectByName(name));
  return db_->Reclassify(id, ids_.output_data);
}

Status SeedSpecTool::AddFlow(const std::string& action,
                             const std::string& data, FlowKind kind) {
  SEED_ASSIGN_OR_RETURN(ObjectId action_id, db_->FindObjectByName(action));
  SEED_ASSIGN_OR_RETURN(ObjectId data_id, db_->FindObjectByName(data));
  AssociationId assoc = kind == FlowKind::kUnknown ? ids_.access
                        : kind == FlowKind::kRead  ? ids_.read
                                                   : ids_.write;
  return db_->CreateRelationship(assoc, data_id, action_id).status();
}

Result<RelationshipId> SeedSpecTool::FindFlow(const std::string& action,
                                              const std::string& data) {
  SEED_ASSIGN_OR_RETURN(ObjectId action_id, db_->FindObjectByName(action));
  SEED_ASSIGN_OR_RETURN(ObjectId data_id, db_->FindObjectByName(data));
  for (RelationshipId rid : db_->RelationshipsOf(data_id, ids_.access, 0)) {
    SEED_ASSIGN_OR_RETURN(const core::RelationshipItem* rel,
                          db_->GetRelationship(rid));
    if (rel->ends[1] == action_id) return rid;
  }
  return Status::NotFound("no flow between '" + action + "' and '" + data +
                          "'");
}

Status SeedSpecTool::RefineFlow(const std::string& action,
                                const std::string& data, FlowKind kind) {
  if (kind == FlowKind::kUnknown) {
    return Status::InvalidArgument("cannot refine a flow to 'unknown'");
  }
  SEED_ASSIGN_OR_RETURN(RelationshipId rid, FindFlow(action, data));
  return db_->ReclassifyRelationship(
      rid, kind == FlowKind::kRead ? ids_.read : ids_.write);
}

Status SeedSpecTool::Contain(const std::string& parent,
                             const std::string& child) {
  SEED_ASSIGN_OR_RETURN(ObjectId parent_id, db_->FindObjectByName(parent));
  SEED_ASSIGN_OR_RETURN(ObjectId child_id, db_->FindObjectByName(child));
  return db_
      ->CreateRelationship(ids_.contained, child_id, parent_id)
      .status();
}

Status SeedSpecTool::SetDescription(const std::string& name,
                                    const std::string& text) {
  SEED_ASSIGN_OR_RETURN(ObjectId id, db_->FindObjectByName(name));
  std::vector<ObjectId> existing = db_->SubObjects(id, "Description");
  ObjectId desc;
  if (existing.empty()) {
    SEED_ASSIGN_OR_RETURN(desc, db_->CreateSubObject(id, "Description"));
  } else {
    desc = existing[0];
  }
  return db_->SetValue(desc, core::Value::String(text));
}

Result<std::string> SeedSpecTool::GetDescription(const std::string& name) {
  SEED_ASSIGN_OR_RETURN(ObjectId id, db_->FindObjectByName(name));
  std::vector<ObjectId> existing = db_->SubObjects(id, "Description");
  if (existing.empty()) {
    return Status::NotFound("'" + name + "' has no description");
  }
  SEED_ASSIGN_OR_RETURN(const core::ObjectItem* desc,
                        db_->GetObject(existing[0]));
  if (!desc->value.defined()) {
    return Status::NotFound("'" + name + "' has an undefined description");
  }
  return desc->value.as_string();
}

Result<std::vector<std::string>> SeedSpecTool::DataReadBy(
    const std::string& action) {
  SEED_ASSIGN_OR_RETURN(ObjectId action_id, db_->FindObjectByName(action));
  std::vector<std::string> out;
  for (RelationshipId rid : db_->RelationshipsOf(action_id, ids_.read, 1)) {
    SEED_ASSIGN_OR_RETURN(const core::RelationshipItem* rel,
                          db_->GetRelationship(rid));
    out.push_back(db_->FullName(rel->ends[0]));
  }
  std::sort(out.begin(), out.end());
  return out;
}

Result<std::vector<std::string>> SeedSpecTool::ActionsAccessing(
    const std::string& data) {
  SEED_ASSIGN_OR_RETURN(ObjectId data_id, db_->FindObjectByName(data));
  std::vector<std::string> out;
  for (RelationshipId rid : db_->RelationshipsOf(data_id, ids_.access, 0)) {
    SEED_ASSIGN_OR_RETURN(const core::RelationshipItem* rel,
                          db_->GetRelationship(rid));
    out.push_back(db_->FullName(rel->ends[1]));
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

Result<std::uint64_t> SeedSpecTool::CountIncomplete() {
  return static_cast<std::uint64_t>(db_->CheckCompleteness().size());
}

// --- DirectSpecTool ----------------------------------------------------------

Status DirectSpecTool::AddThing(const std::string& name) {
  if (!nodes_.emplace(name, Node{Kind::kThing, {}}).second) {
    return Status::AlreadyExists("'" + name + "' already exists");
  }
  return Status::OK();
}

Status DirectSpecTool::AddData(const std::string& name) {
  if (!nodes_.emplace(name, Node{Kind::kData, {}}).second) {
    return Status::AlreadyExists("'" + name + "' already exists");
  }
  return Status::OK();
}

Status DirectSpecTool::AddAction(const std::string& name) {
  if (!nodes_.emplace(name, Node{Kind::kAction, {}}).second) {
    return Status::AlreadyExists("'" + name + "' already exists");
  }
  return Status::OK();
}

Status DirectSpecTool::RefineThingToData(const std::string& name) {
  auto it = nodes_.find(name);
  if (it == nodes_.end()) return Status::NotFound("'" + name + "'");
  it->second.kind = Kind::kData;
  return Status::OK();
}

Status DirectSpecTool::RefineThingToAction(const std::string& name) {
  auto it = nodes_.find(name);
  if (it == nodes_.end()) return Status::NotFound("'" + name + "'");
  it->second.kind = Kind::kAction;
  return Status::OK();
}

Status DirectSpecTool::RefineDataToInput(const std::string& name) {
  auto it = nodes_.find(name);
  if (it == nodes_.end()) return Status::NotFound("'" + name + "'");
  it->second.kind = Kind::kInput;
  return Status::OK();
}

Status DirectSpecTool::RefineDataToOutput(const std::string& name) {
  auto it = nodes_.find(name);
  if (it == nodes_.end()) return Status::NotFound("'" + name + "'");
  it->second.kind = Kind::kOutput;
  return Status::OK();
}

Status DirectSpecTool::AddFlow(const std::string& action,
                               const std::string& data, FlowKind kind) {
  if (nodes_.find(action) == nodes_.end()) {
    return Status::NotFound("'" + action + "'");
  }
  if (nodes_.find(data) == nodes_.end()) {
    return Status::NotFound("'" + data + "'");
  }
  flows_.push_back(Flow{action, data, kind});
  return Status::OK();
}

Status DirectSpecTool::RefineFlow(const std::string& action,
                                  const std::string& data, FlowKind kind) {
  for (Flow& flow : flows_) {
    if (flow.action == action && flow.data == data) {
      flow.kind = kind;
      return Status::OK();
    }
  }
  return Status::NotFound("no flow between '" + action + "' and '" + data +
                          "'");
}

Status DirectSpecTool::Contain(const std::string& parent,
                               const std::string& child) {
  if (nodes_.find(parent) == nodes_.end()) {
    return Status::NotFound("'" + parent + "'");
  }
  if (nodes_.find(child) == nodes_.end()) {
    return Status::NotFound("'" + child + "'");
  }
  container_of_[child] = parent;  // no cycle check: the old tool trusted you
  return Status::OK();
}

Status DirectSpecTool::SetDescription(const std::string& name,
                                      const std::string& text) {
  auto it = nodes_.find(name);
  if (it == nodes_.end()) return Status::NotFound("'" + name + "'");
  it->second.description = text;
  return Status::OK();
}

Result<std::string> DirectSpecTool::GetDescription(const std::string& name) {
  auto it = nodes_.find(name);
  if (it == nodes_.end()) return Status::NotFound("'" + name + "'");
  if (it->second.description.empty()) {
    return Status::NotFound("'" + name + "' has no description");
  }
  return it->second.description;
}

Result<std::vector<std::string>> DirectSpecTool::DataReadBy(
    const std::string& action) {
  std::vector<std::string> out;
  for (const Flow& flow : flows_) {
    if (flow.action == action && flow.kind == FlowKind::kRead) {
      out.push_back(flow.data);
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

Result<std::vector<std::string>> DirectSpecTool::ActionsAccessing(
    const std::string& data) {
  std::vector<std::string> out;
  for (const Flow& flow : flows_) {
    if (flow.data == data) out.push_back(flow.action);
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

Result<std::uint64_t> DirectSpecTool::CountIncomplete() {
  return std::uint64_t{0};  // the old tool has no completeness concept
}

}  // namespace seed::spades
