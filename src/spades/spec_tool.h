// A miniature SPADES: the specification/design tool the paper integrated
// SEED into. Two implementations share one interface:
//
//  * SeedSpecTool — backed by a SEED Database under the Fig. 3 schema
//    (vague Things, Access flows, re-classification, completeness checks);
//  * DirectSpecTool — the pre-SEED baseline: hand-rolled in-memory
//    structures with no consistency checking and no database features.
//
// The paper's only performance observation — "SPADES has become
// considerably slower, but much more flexible" — is reproduced by running
// the same workload through both (bench_spades_overhead).

#ifndef SEED_SPADES_SPEC_TOOL_H_
#define SEED_SPADES_SPEC_TOOL_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/result.h"
#include "core/database.h"
#include "spades/spec_schema.h"

namespace seed::spades {

enum class FlowKind { kUnknown, kRead, kWrite };

/// The operations a specification session performs.
class SpecTool {
 public:
  virtual ~SpecTool() = default;

  virtual std::string name() const = 0;

  /// Vague entry: "there is a thing with this name".
  virtual Status AddThing(const std::string& name) = 0;
  virtual Status AddData(const std::string& name) = 0;
  virtual Status AddAction(const std::string& name) = 0;

  /// Makes a previously vague thing precise.
  virtual Status RefineThingToData(const std::string& name) = 0;
  virtual Status RefineThingToAction(const std::string& name) = 0;
  /// Further precision: data becomes input or output.
  virtual Status RefineDataToInput(const std::string& name) = 0;
  virtual Status RefineDataToOutput(const std::string& name) = 0;

  /// Adds a dataflow between an action and a data item. kUnknown records a
  /// vague Access; kRead/kWrite record precise flows (the data item must
  /// already be input/output respectively under the Fig. 3 schema).
  virtual Status AddFlow(const std::string& action, const std::string& data,
                         FlowKind kind) = 0;
  /// Specializes an existing vague flow.
  virtual Status RefineFlow(const std::string& action,
                            const std::string& data, FlowKind kind) = 0;

  /// Nests `child` inside `parent` (actions form a tree).
  virtual Status Contain(const std::string& parent,
                         const std::string& child) = 0;

  virtual Status SetDescription(const std::string& name,
                                const std::string& text) = 0;
  virtual Result<std::string> GetDescription(const std::string& name) = 0;

  /// Names of data items the action reads (precise Read flows only).
  virtual Result<std::vector<std::string>> DataReadBy(
      const std::string& action) = 0;
  /// Names of actions with any flow to/from the data item.
  virtual Result<std::vector<std::string>> ActionsAccessing(
      const std::string& data) = 0;

  /// Number of open completeness findings (0 for tools without the
  /// concept).
  virtual Result<std::uint64_t> CountIncomplete() = 0;
};

/// SEED-backed implementation (Fig. 3 schema).
class SeedSpecTool : public SpecTool {
 public:
  static Result<std::unique_ptr<SeedSpecTool>> Create();

  std::string name() const override { return "SeedSpecTool"; }

  Status AddThing(const std::string& name) override;
  Status AddData(const std::string& name) override;
  Status AddAction(const std::string& name) override;
  Status RefineThingToData(const std::string& name) override;
  Status RefineThingToAction(const std::string& name) override;
  Status RefineDataToInput(const std::string& name) override;
  Status RefineDataToOutput(const std::string& name) override;
  Status AddFlow(const std::string& action, const std::string& data,
                 FlowKind kind) override;
  Status RefineFlow(const std::string& action, const std::string& data,
                    FlowKind kind) override;
  Status Contain(const std::string& parent,
                 const std::string& child) override;
  Status SetDescription(const std::string& name,
                        const std::string& text) override;
  Result<std::string> GetDescription(const std::string& name) override;
  Result<std::vector<std::string>> DataReadBy(
      const std::string& action) override;
  Result<std::vector<std::string>> ActionsAccessing(
      const std::string& data) override;
  Result<std::uint64_t> CountIncomplete() override;

  core::Database* database() { return db_.get(); }
  const Fig3Ids& ids() const { return ids_; }

 private:
  SeedSpecTool(std::unique_ptr<core::Database> db, Fig3Ids ids)
      : db_(std::move(db)), ids_(ids) {}

  Result<RelationshipId> FindFlow(const std::string& action,
                                  const std::string& data);

  std::unique_ptr<core::Database> db_;
  Fig3Ids ids_;
};

/// Pre-SEED baseline: plain structs, no checking, no vagueness concept
/// beyond a kind tag.
class DirectSpecTool : public SpecTool {
 public:
  std::string name() const override { return "DirectSpecTool"; }

  Status AddThing(const std::string& name) override;
  Status AddData(const std::string& name) override;
  Status AddAction(const std::string& name) override;
  Status RefineThingToData(const std::string& name) override;
  Status RefineThingToAction(const std::string& name) override;
  Status RefineDataToInput(const std::string& name) override;
  Status RefineDataToOutput(const std::string& name) override;
  Status AddFlow(const std::string& action, const std::string& data,
                 FlowKind kind) override;
  Status RefineFlow(const std::string& action, const std::string& data,
                    FlowKind kind) override;
  Status Contain(const std::string& parent,
                 const std::string& child) override;
  Status SetDescription(const std::string& name,
                        const std::string& text) override;
  Result<std::string> GetDescription(const std::string& name) override;
  Result<std::vector<std::string>> DataReadBy(
      const std::string& action) override;
  Result<std::vector<std::string>> ActionsAccessing(
      const std::string& data) override;
  Result<std::uint64_t> CountIncomplete() override;

 private:
  enum class Kind { kThing, kData, kInput, kOutput, kAction };
  struct Node {
    Kind kind;
    std::string description;
  };
  struct Flow {
    std::string action;
    std::string data;
    FlowKind kind;
  };

  std::unordered_map<std::string, Node> nodes_;
  std::vector<Flow> flows_;
  std::unordered_map<std::string, std::string> container_of_;
};

}  // namespace seed::spades

#endif  // SEED_SPADES_SPEC_TOOL_H_
