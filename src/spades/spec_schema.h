// The paper's example schemas.
//
// BuildFig2Schema(): the "primitive specification system" of Fig. 2 —
// classes Data (with the Text/Body/Selector/Keywords subtree) and Action,
// associations Read and Write (minimum cardinality 1..* on the Data side),
// and the ACYCLIC association Contained imposing a tree on Actions.
//
// BuildFig3Schema(): Fig. 2 extended with the generalizations of Fig. 3 —
// class Thing generalizing Data and Action (with Revised DATE and
// Description STRING), InputData/OutputData specializing Data, association
// Access generalizing Read and Write, and the Write attributes
// NumberOfWrites (INT) and ErrorHandling (enum abort/repeat).

#ifndef SEED_SPADES_SPEC_SCHEMA_H_
#define SEED_SPADES_SPEC_SCHEMA_H_

#include "common/result.h"
#include "schema/schema.h"

namespace seed::spades {

/// Ids of the Fig. 2 schema elements.
struct Fig2Ids {
  ClassId data, text, body, contents, keywords, selector;
  ClassId action, description;
  AssociationId read, write, contained;
};

struct Fig2Schema {
  schema::SchemaPtr schema;
  Fig2Ids ids;
};

Result<Fig2Schema> BuildFig2Schema();

/// Ids of the Fig. 3 schema elements (includes the Fig. 2 subset).
struct Fig3Ids {
  ClassId thing, revised, description;
  ClassId data, text, body, contents, keywords, selector;
  ClassId input_data, output_data;
  ClassId action;
  AssociationId access, read, write, contained;
  ClassId number_of_writes, error_handling;
};

struct Fig3Schema {
  schema::SchemaPtr schema;
  Fig3Ids ids;
};

Result<Fig3Schema> BuildFig3Schema();

}  // namespace seed::spades

#endif  // SEED_SPADES_SPEC_SCHEMA_H_
