#include "spades/spec_schema.h"

#include "common/macros.h"
#include "schema/schema_builder.h"

namespace seed::spades {

using schema::Cardinality;
using schema::Role;
using schema::SchemaBuilder;
using schema::ValueType;

Result<Fig2Schema> BuildFig2Schema() {
  SchemaBuilder b("Fig2MiniSpec");
  Fig2Ids ids;

  ids.data = b.AddIndependentClass("Data");
  ids.text = b.AddDependentClass(ids.data, "Text", Cardinality(0, 16));
  ids.body = b.AddDependentClass(ids.text, "Body", Cardinality::One());
  ids.contents = b.AddDependentClass(ids.body, "Contents",
                                     Cardinality::One(), ValueType::kString);
  ids.keywords = b.AddDependentClass(ids.body, "Keywords", Cardinality(0, 8),
                                     ValueType::kString);
  ids.selector = b.AddDependentClass(ids.text, "Selector",
                                     Cardinality::Optional(),
                                     ValueType::kString);

  ids.action = b.AddIndependentClass("Action");
  ids.description = b.AddDependentClass(ids.action, "Description",
                                        Cardinality::Optional(),
                                        ValueType::kString);

  // "'1..*' means that 'Data' must have at least one relationship with an
  // instance of 'Action'" — the Data-side roles carry min 1.
  ids.read = b.AddAssociation(
      "Read", Role{"from", ids.data, Cardinality::AtLeast(1)},
      Role{"by", ids.action, Cardinality::Any()});
  ids.write = b.AddAssociation(
      "Write", Role{"to", ids.data, Cardinality::AtLeast(1)},
      Role{"by", ids.action, Cardinality::Any()});

  // "The association 'Contained' imposes a tree structure on ... 'Action'
  // by means of the attribute ACYCLIC and the cardinality 0..1 for the
  // role 'in'": each action is contained in at most one container.
  ids.contained = b.AddAssociation(
      "Contained", Role{"contained", ids.action, Cardinality::Optional()},
      Role{"container", ids.action, Cardinality::Any()},
      /*acyclic=*/true);

  SEED_ASSIGN_OR_RETURN(schema::SchemaPtr schema, b.Build());
  return Fig2Schema{std::move(schema), ids};
}

Result<Fig3Schema> BuildFig3Schema() {
  SchemaBuilder b("Fig3GeneralizedSpec");
  Fig3Ids ids;

  // Generalization root: Thing, carrying Revised DATE and Description.
  ids.thing = b.AddIndependentClass("Thing");
  ids.revised = b.AddDependentClass(ids.thing, "Revised",
                                    Cardinality::Optional(),
                                    ValueType::kDate);
  ids.description = b.AddDependentClass(ids.thing, "Description",
                                        Cardinality::Optional(),
                                        ValueType::kString);

  ids.data = b.AddIndependentClass("Data");
  b.SetGeneralization(ids.data, ids.thing);
  ids.text = b.AddDependentClass(ids.data, "Text", Cardinality(0, 16));
  ids.body = b.AddDependentClass(ids.text, "Body", Cardinality::One());
  ids.contents = b.AddDependentClass(ids.body, "Contents",
                                     Cardinality::One(), ValueType::kString);
  ids.keywords = b.AddDependentClass(ids.body, "Keywords", Cardinality(0, 8),
                                     ValueType::kString);
  ids.selector = b.AddDependentClass(ids.text, "Selector",
                                     Cardinality::Optional(),
                                     ValueType::kString);

  ids.input_data = b.AddIndependentClass("InputData");
  b.SetGeneralization(ids.input_data, ids.data);
  ids.output_data = b.AddIndependentClass("OutputData");
  b.SetGeneralization(ids.output_data, ids.data);

  ids.action = b.AddIndependentClass("Action");
  b.SetGeneralization(ids.action, ids.thing);

  // Thing is a covering generalization: every Thing must finally become a
  // Data (or below) or an Action.
  b.SetCovering(ids.thing);

  // Access generalizes Read and Write. "The cardinality 1..* of 'Access
  // by' means that every object of class 'Action' eventually must access
  // at least one object of class 'Data'. However, the cardinality 0..* of
  // 'Read by' and 'Write by' allows either a write or a read access to
  // satisfy this condition."
  ids.access = b.AddAssociation(
      "Access", Role{"of", ids.data, Cardinality::AtLeast(1)},
      Role{"by", ids.action, Cardinality::AtLeast(1)});
  ids.read = b.AddAssociation(
      "Read", Role{"from", ids.input_data, Cardinality::AtLeast(1)},
      Role{"by", ids.action, Cardinality::Any()});
  b.SetGeneralization(ids.read, ids.access);
  ids.write = b.AddAssociation(
      "Write", Role{"to", ids.output_data, Cardinality::AtLeast(1)},
      Role{"by", ids.action, Cardinality::Any()});
  b.SetGeneralization(ids.write, ids.access);
  // Access must finally be specialized into Read or Write.
  b.SetCovering(ids.access);

  // Write attributes (paper: "written twice ... repeated in case of
  // error").
  ids.number_of_writes = b.AddDependentClass(
      ids.write, "NumberOfWrites", Cardinality::One(), ValueType::kInt);
  ids.error_handling = b.AddDependentClass(
      ids.write, "ErrorHandling", Cardinality::Optional(), ValueType::kEnum);
  b.SetEnumValues(ids.error_handling, {"abort", "repeat"});

  ids.contained = b.AddAssociation(
      "Contained", Role{"contained", ids.action, Cardinality::Optional()},
      Role{"container", ids.action, Cardinality::Any()},
      /*acyclic=*/true);

  SEED_ASSIGN_OR_RETURN(schema::SchemaPtr schema, b.Build());
  return Fig3Schema{std::move(schema), ids};
}

}  // namespace seed::spades
