// A secondary index over one attribute of one class extent.
//
// The paper's SEED prototype retrieves by name only; every value query in
// this reproduction therefore scanned the full class extent. An
// AttributeIndex maps attribute values to the live, non-pattern objects
// carrying them, so the query planner can answer selective equality and
// range predicates without touching the extent.
//
// The indexed attribute is either the object's own value (`role` empty in
// the spec) or the value(s) of its sub-objects in a role ("Action indexed
// by Description"). Undefined values are never indexed — the paper's rule
// "an undefined object matches nothing" makes the index and the scan agree
// without a residual undefined check; vague objects simply have no entry.
//
// Storage is dual, per access pattern: an ordered map (Value::Less) serves
// range/comparison predicates, a hash map over the same postings serves
// equality lookups in O(1). An inverted per-object key list makes
// maintenance idempotent: Set(id, keys) diffs against what is currently
// indexed, so callers may refresh an object after any mutation without
// tracking deltas.

#ifndef SEED_INDEX_ATTRIBUTE_INDEX_H_
#define SEED_INDEX_ATTRIBUTE_INDEX_H_

#include <functional>
#include <map>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/ids.h"
#include "core/value.h"

namespace seed::index {

/// Identifies what an index covers: the extent of `cls` (its whole
/// generalization family when `include_specializations`, mirroring the
/// query layer's ClassExtent default), keyed by the object's own value
/// (`role` empty) or by the values of its sub-objects in `role`.
struct IndexSpec {
  ClassId cls;
  std::string role;
  bool include_specializations = true;

  bool operator==(const IndexSpec&) const = default;
  /// "Action.Description" / "Thing (exact)" style display name.
  std::string ToString() const;
};

class AttributeIndex {
 public:
  explicit AttributeIndex(IndexSpec spec) : spec_(std::move(spec)) {}

  const IndexSpec& spec() const { return spec_; }

  /// Declares the complete key set of `id` (deduplicated internally);
  /// diffs against the currently indexed keys and applies the change.
  /// An empty `keys` removes the object entirely. Idempotent.
  void Set(ObjectId id, const std::vector<core::Value>& keys);

  /// Objects whose indexed attribute equals `key`, ascending. O(1) probe.
  std::vector<ObjectId> Lookup(const core::Value& key) const;

  /// Objects with a key in [lo, hi] (bounds optional per flag), ascending,
  /// deduplicated. Callers bound the scan within one value type; the
  /// cross-type ordering of Value::Less keeps each type contiguous.
  std::vector<ObjectId> Range(const core::Value& lo, bool lo_inclusive,
                              const core::Value& hi,
                              bool hi_inclusive) const;

  /// Distinct (key, object) pairs in key order; for tests and stats.
  void ForEach(
      const std::function<void(const core::Value&, ObjectId)>& fn) const;

  void Clear();

  size_t num_objects() const { return keys_of_.size(); }
  size_t num_entries() const { return num_entries_; }
  size_t num_distinct_keys() const { return ordered_.size(); }

 private:
  using Postings = std::map<core::Value, std::set<ObjectId>,
                            core::Value::Less>;

  void Insert(const core::Value& key, ObjectId id);
  void Erase(const core::Value& key, ObjectId id);

  IndexSpec spec_;
  Postings ordered_;
  /// Equality probe: value -> node in `ordered_` (std::map iterators are
  /// stable under unrelated insert/erase). Keyed by Compare-equality so
  /// hash and ordered storage agree on which keys coincide.
  std::unordered_map<core::Value, Postings::iterator, core::Value::Hash,
                     core::Value::CompareEqual>
      hash_;
  /// Inverted list: exactly the keys currently indexed per object.
  std::unordered_map<ObjectId, std::vector<core::Value>> keys_of_;
  size_t num_entries_ = 0;
};

}  // namespace seed::index

#endif  // SEED_INDEX_ATTRIBUTE_INDEX_H_
