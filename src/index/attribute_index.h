// A secondary index over one attribute of one extent.
//
// The paper's SEED prototype retrieves by name only; every value query in
// this reproduction therefore scanned the full class extent. An
// AttributeIndex maps attribute values to the live, non-pattern items
// carrying them, so the query planner can answer selective equality and
// range predicates without touching the extent.
//
// An index covers one of two extent kinds:
//  * an *object* extent — the indexed attribute is either the object's own
//    value (`role` empty in the spec) or the value(s) of its sub-objects
//    in a role ("Action indexed by Description"); entries are ObjectIds;
//  * a *relationship* extent — the spec names an association and a
//    relationship-attribute role (paper Fig. 3: `Write.NumberOfWrites`);
//    entries are RelationshipIds, keyed by the values of the attribute
//    sub-objects hanging off each relationship.
// Internally both are stored as raw 64-bit entry ids; the typed accessors
// (`Lookup`/`Range` vs `LookupRels`/`RangeRels`) are thin wrappers, and an
// index only ever holds ids of one kind, per its spec.
//
// Undefined values are never indexed — the paper's rule "an undefined
// object matches nothing" makes the index and the scan agree without a
// residual undefined check; vague items simply have no entry.
//
// Storage is dual, per access pattern: an ordered map (Value::Less) serves
// range/comparison predicates, a hash map over the same postings serves
// equality lookups in O(1). An inverted per-entry key list makes
// maintenance idempotent: Set(id, keys) diffs against what is currently
// indexed, so callers may refresh an item after any mutation without
// tracking deltas. The entry count and distinct-key count fall out of this
// maintenance for free, which is what the planner's cost model reads.

#ifndef SEED_INDEX_ATTRIBUTE_INDEX_H_
#define SEED_INDEX_ATTRIBUTE_INDEX_H_

#include <cstdint>
#include <functional>
#include <map>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/ids.h"
#include "common/thread_annotations.h"
#include "core/value.h"

namespace seed::index {

/// Identifies what an index covers. For object indexes: the extent of
/// `cls` (its whole generalization family when `include_specializations`,
/// mirroring the query layer's ClassExtent default), keyed by the object's
/// own value (`role` empty) or by the values of its sub-objects in `role`.
/// For relationship indexes (`assoc` valid): the relationships of the
/// association family, keyed by the values of their attribute sub-objects
/// in `role` (which must be non-empty — relationships carry no own value).
struct IndexSpec {
  ClassId cls{};
  std::string role;
  bool include_specializations = true;
  AssociationId assoc{};

  /// Relationship-extent spec ("Write.NumberOfWrites").
  static IndexSpec ForAssociation(AssociationId assoc, std::string role,
                                  bool include_specializations = true) {
    IndexSpec spec;
    spec.assoc = assoc;
    spec.role = std::move(role);
    spec.include_specializations = include_specializations;
    return spec;
  }

  bool on_relationships() const { return assoc.valid(); }

  bool operator==(const IndexSpec&) const = default;
  /// "Action.Description" / "Thing (exact)" style display name.
  std::string ToString() const;
};

class AttributeIndex {
 public:
  explicit AttributeIndex(IndexSpec spec) : spec_(std::move(spec)) {}

  const IndexSpec& spec() const { return spec_; }

  /// Declares the complete key set of `id` (deduplicated internally);
  /// diffs against the currently indexed keys and applies the change.
  /// An empty `keys` removes the entry entirely. Idempotent.
  void Set(ObjectId id, const std::vector<core::Value>& keys) {
    SetEntry(id.raw(), keys);
  }
  void Set(RelationshipId id, const std::vector<core::Value>& keys) {
    SetEntry(id.raw(), keys);
  }

  /// Objects whose indexed attribute equals `key`, ascending. O(1) probe.
  std::vector<ObjectId> Lookup(const core::Value& key) const;
  /// Relationship-extent equivalent.
  std::vector<RelationshipId> LookupRels(const core::Value& key) const;

  /// Entries with a key in [lo, hi] (bounds optional per flag), ascending,
  /// deduplicated. Callers bound the scan within one value type; the
  /// cross-type ordering of Value::Less keeps each type contiguous.
  std::vector<ObjectId> Range(const core::Value& lo, bool lo_inclusive,
                              const core::Value& hi,
                              bool hi_inclusive) const;
  std::vector<RelationshipId> RangeRels(const core::Value& lo,
                                        bool lo_inclusive,
                                        const core::Value& hi,
                                        bool hi_inclusive) const;

  /// Exact number of entries equal to `key` — an O(1) hash probe; the
  /// planner's equality-cardinality estimate (it is not an estimate at
  /// all, one of the perks of counting postings directly).
  size_t CountEquals(const core::Value& key) const;

  /// Estimated number of entries with a key in the range. Walks the
  /// ordered postings counting exactly until `probe_limit` distinct keys
  /// have been visited; past the cap it walks up to `probe_limit` more
  /// keys toward the range's end — so any range spanning at most
  /// 2 x probe_limit keys is counted exactly. Ranges wider than that
  /// are answered from the lazily built equi-depth histogram: buckets
  /// fully inside [lo, hi] contribute their exact row count, the two
  /// partially covered boundary buckets contribute half theirs, so the
  /// estimate is provably within (rows(b_lo) + rows(b_hi)) / 2 of the
  /// true count. Keys below lo or beyond hi never inflate the estimate:
  /// a wide-but-empty range over a populated index estimates 0, not
  /// ~num_entries. probe_limit == 0 skips the walk entirely and answers
  /// num_entries for non-empty ranges, 0 for provably empty ones.
  double EstimateRange(const core::Value& lo, bool lo_inclusive,
                       const core::Value& hi, bool hi_inclusive,
                       size_t probe_limit = 64) const;

  /// One bucket of the equal-frequency histogram: all postings whose key
  /// lies in [lower, upper] (both ends are real indexed keys), `rows`
  /// postings over `keys` distinct keys. Buckets partition the key space
  /// in Value::Less order and each holds ~num_entries/32 rows.
  struct HistogramBucket {
    core::Value lower;
    core::Value upper;
    size_t rows = 0;
    size_t keys = 0;
  };

  /// Snapshot of the equi-depth histogram, rebuilding it first if the
  /// mutation counter has moved since the last build. Diagnostic/test
  /// surface; estimation consults it through EstimateRange.
  std::vector<HistogramBucket> Histogram() const;

  /// Monotonic count of posting mutations (inserts + erases + clears).
  /// The histogram uses it as its rebuild stamp; the plan cache reads it
  /// as a cheap drift fingerprint.
  std::uint64_t mutation_count() const { return mutations_; }

  /// Distinct (key, object) pairs in key order; for tests and stats.
  void ForEach(
      const std::function<void(const core::Value&, ObjectId)>& fn) const;
  void ForEachRel(const std::function<void(const core::Value&,
                                           RelationshipId)>& fn) const;

  void Clear();

  size_t num_objects() const { return keys_of_.size(); }
  size_t num_entries() const { return num_entries_; }
  size_t num_distinct_keys() const { return ordered_.size(); }

 private:
  using EntryId = std::uint64_t;
  using Postings = std::map<core::Value, std::set<EntryId>,
                            core::Value::Less>;

  static constexpr size_t kHistogramBuckets = 32;

  void SetEntry(EntryId id, const std::vector<core::Value>& keys);
  void Insert(const core::Value& key, EntryId id);
  void Erase(const core::Value& key, EntryId id);
  std::vector<EntryId> RangeRaw(const core::Value& lo, bool lo_inclusive,
                                const core::Value& hi,
                                bool hi_inclusive) const;
  void RebuildHistogramLocked() const SEED_REQUIRES(histogram_mu_);
  double HistogramEstimate(const core::Value& lo, bool lo_inclusive,
                           const core::Value& hi, bool hi_inclusive) const
      SEED_REQUIRES(histogram_mu_);

  IndexSpec spec_;
  Postings ordered_;
  /// Equality probe: value -> node in `ordered_` (std::map iterators are
  /// stable under unrelated insert/erase). Keyed by Compare-equality so
  /// hash and ordered storage agree on which keys coincide.
  std::unordered_map<core::Value, Postings::iterator, core::Value::Hash,
                     core::Value::CompareEqual>
      hash_;
  /// Inverted list: exactly the keys currently indexed per entry.
  std::unordered_map<EntryId, std::vector<core::Value>> keys_of_;
  size_t num_entries_ = 0;
  /// Bumped by every successful Insert/Erase (and Clear). Written only
  /// from mutation paths, which the Database contract runs exclusively;
  /// concurrent readers only ever see a quiescent value (snapshots are
  /// immutable), same as `num_entries_`.
  std::uint64_t mutations_ = 0;
  /// The histogram is built lazily *during const reads* (EstimateRange),
  /// and reader sessions share one snapshot Database — so unlike the
  /// postings themselves it needs a lock of its own.
  mutable common::Mutex histogram_mu_;
  mutable std::vector<HistogramBucket> histogram_
      SEED_GUARDED_BY(histogram_mu_);
  mutable bool histogram_built_ SEED_GUARDED_BY(histogram_mu_) = false;
  mutable std::uint64_t histogram_stamp_ SEED_GUARDED_BY(histogram_mu_) = 0;
};

}  // namespace seed::index

#endif  // SEED_INDEX_ATTRIBUTE_INDEX_H_
