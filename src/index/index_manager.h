// IndexManager: the set of secondary attribute indexes of one Database.
//
// The manager owns the AttributeIndex instances and knows how to derive an
// item's index keys from the raw item tables, but holds no back-pointer
// into the database — every call takes the schema and the item maps, so
// the core layer can own a manager by value (Database is movable) and the
// version layer can rebuild entries under a historical schema.
//
// Maintenance contract: after any mutation that can change an object's
// extent membership (create, delete/undelete, reclassify, restore) or its
// keys (SetValue/ClearValue on the object or on one of its sub-objects),
// the database calls RefreshObject(id) — and RefreshObject(parent) when
// the mutated object is a dependent sub-object. Relationship-extent
// indexes mirror this: RefreshRelationship(id) runs after relationship
// create/delete/reclassify and after mutations of relationship-attribute
// sub-objects. Refresh recomputes the desired key set from scratch and
// diffs it against the indexed state, so the calls are idempotent and
// order-independent; bulk restore paths go through RefreshAll (hooked
// into Database::RebuildIndexes).
//
// Reclassification migrates entries between extents for free: the desired
// key set of an item is empty for every index whose coverage no longer
// includes the item's class/association, and the refresh diffs against
// all indexes of the matching extent kind, not just the covering ones.

#ifndef SEED_INDEX_INDEX_MANAGER_H_
#define SEED_INDEX_INDEX_MANAGER_H_

#include <map>
#include <memory>
#include <string_view>
#include <vector>

#include "common/coding.h"
#include "common/result.h"
#include "core/items.h"
#include "index/attribute_index.h"
#include "schema/schema.h"

namespace seed::index {

class IndexManager {
 public:
  using ObjectMap = std::map<ObjectId, core::ObjectItem>;
  using RelationshipMap = std::map<RelationshipId, core::RelationshipItem>;

  /// Fails when the class/association is unknown, when a non-empty role
  /// does not resolve on it under `schema`, or when a relationship spec
  /// has no role (relationships carry no own value to index).
  static Status ValidateSpec(const schema::Schema& schema,
                             const IndexSpec& spec);

  /// Registers an index. Fails if the spec duplicates an existing index
  /// or does not validate. The caller backfills entries (Database calls
  /// BackfillIndex).
  Status CreateIndex(const schema::Schema& schema, IndexSpec spec);

  /// Derives the entries of the index on `spec` from the live items
  /// (no-op for an unknown spec). Other indexes are untouched.
  void BackfillIndex(const schema::Schema& schema, const ObjectMap& objects,
                     const RelationshipMap& relationships,
                     const IndexSpec& spec);

  /// Drops indexes whose spec no longer validates (after a schema
  /// migration that removed a class or role); returns how many.
  size_t PruneInvalidSpecs(const schema::Schema& schema);

  /// Drops every object index on (cls, role); returns NotFound if none
  /// matched.
  Status DropIndex(ClassId cls, std::string_view role);
  /// Drops every relationship index on (assoc, role).
  Status DropIndex(AssociationId assoc, std::string_view role);

  /// The index matching `spec` exactly, or nullptr.
  const AttributeIndex* Find(const IndexSpec& spec) const;

  /// Picks an object index usable for a query over the extent of `cls`
  /// (include_specializations as in ClassExtent) keyed on `role`: its
  /// coverage must be a superset of the query extent. Prefers an exact
  /// match; a broader index (e.g. one on a generalization ancestor) is
  /// returned otherwise and the caller filters extent membership
  /// residually. Returns nullptr when no index qualifies.
  const AttributeIndex* BestFor(const schema::Schema& schema, ClassId cls,
                                bool include_specializations,
                                std::string_view role) const;

  /// Relationship-extent counterpart: an index over the relationships of
  /// `assoc` (or a generalization ancestor) keyed on attribute `role`.
  const AttributeIndex* BestForRelationships(const schema::Schema& schema,
                                             AssociationId assoc,
                                             bool include_specializations,
                                             std::string_view role) const;

  const std::vector<std::unique_ptr<AttributeIndex>>& indexes() const {
    return indexes_;
  }
  bool empty() const { return indexes_.empty(); }
  size_t size() const { return indexes_.size(); }
  bool has_relationship_indexes() const { return num_rel_indexes_ != 0; }

  /// Recomputes the key set of object `id` in every object index and
  /// applies the diff. Relationship indexes are untouched (their entries
  /// live in a different id space).
  void RefreshObject(const schema::Schema& schema, const ObjectMap& objects,
                     ObjectId id);

  /// Recomputes the key set of relationship `id` in every relationship
  /// index and applies the diff.
  void RefreshRelationship(const schema::Schema& schema,
                           const ObjectMap& objects,
                           const RelationshipMap& relationships,
                           RelationshipId id);

  /// Drops all entries (index definitions survive) and re-derives them
  /// from the live items.
  void RefreshAll(const schema::Schema& schema, const ObjectMap& objects,
                  const RelationshipMap& relationships);

  /// Drops all entries but keeps the index definitions.
  void ClearEntries();

  /// The key set object `id` should be indexed under per `spec` right now
  /// (empty for relationship specs); the ground truth RefreshObject
  /// converges to (exposed for property tests).
  static std::vector<core::Value> DesiredKeys(const schema::Schema& schema,
                                              const ObjectMap& objects,
                                              const IndexSpec& spec,
                                              ObjectId id);

  /// Relationship counterpart (empty for object specs).
  static std::vector<core::Value> DesiredRelationshipKeys(
      const schema::Schema& schema, const ObjectMap& objects,
      const RelationshipMap& relationships, const IndexSpec& spec,
      RelationshipId id);

  // --- Persistence of index definitions ------------------------------------
  // Entries are derived data and are rebuilt on load; only specs persist.

  void EncodeSpecs(Encoder* enc) const;
  static Result<std::vector<IndexSpec>> DecodeSpecs(Decoder* dec);

  /// True when an index was created/dropped since the flag was cleared;
  /// the persistence layer uses this to re-save the spec catalog.
  bool specs_dirty() const { return specs_dirty_; }
  void ClearSpecsDirty() { specs_dirty_ = false; }

 private:
  std::vector<std::unique_ptr<AttributeIndex>> indexes_;
  size_t num_rel_indexes_ = 0;
  bool specs_dirty_ = false;
};

}  // namespace seed::index

#endif  // SEED_INDEX_INDEX_MANAGER_H_
