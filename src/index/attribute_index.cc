#include "index/attribute_index.h"

#include <algorithm>

#include "obs/metrics.h"

namespace seed::index {

namespace {

/// One equality probe against any attribute index.
void CountProbe() {
  static obs::Counter* probes =
      obs::MetricsRegistry::Global().GetCounter("index.probes.total");
  probes->Increment();
}

/// One ordered range scan against any attribute index.
void CountRangeScan() {
  static obs::Counter* scans =
      obs::MetricsRegistry::Global().GetCounter("index.range_scans.total");
  scans->Increment();
}

template <typename Id>
std::vector<Id> Typed(const std::set<std::uint64_t>& raw) {
  std::vector<Id> out;
  out.reserve(raw.size());
  for (std::uint64_t id : raw) out.push_back(Id(id));
  return out;
}

template <typename Id>
std::vector<Id> Typed(const std::vector<std::uint64_t>& raw) {
  std::vector<Id> out;
  out.reserve(raw.size());
  for (std::uint64_t id : raw) out.push_back(Id(id));
  return out;
}

}  // namespace

std::string IndexSpec::ToString() const {
  std::string s = on_relationships()
                      ? "assoc#" + std::to_string(assoc.raw())
                      : "class#" + std::to_string(cls.raw());
  if (!role.empty()) s += "." + role;
  if (!include_specializations) s += " (exact)";
  return s;
}

void AttributeIndex::Insert(const core::Value& key, EntryId id) {
  auto it = hash_.find(key);
  if (it == hash_.end()) {
    it = hash_.emplace(key, ordered_.emplace(key, std::set<EntryId>{}).first)
             .first;
  }
  if (it->second->second.insert(id).second) {
    ++num_entries_;
    ++mutations_;
  }
}

void AttributeIndex::Erase(const core::Value& key, EntryId id) {
  auto it = hash_.find(key);
  if (it == hash_.end()) return;
  if (it->second->second.erase(id) != 0) {
    --num_entries_;
    ++mutations_;
  }
  if (it->second->second.empty()) {
    ordered_.erase(it->second);
    hash_.erase(it);
  }
}

void AttributeIndex::SetEntry(EntryId id,
                              const std::vector<core::Value>& keys) {
  std::vector<core::Value> desired = keys;
  std::sort(desired.begin(), desired.end(), core::Value::Less{});
  desired.erase(std::unique(desired.begin(), desired.end(),
                            core::Value::CompareEqual{}),
                desired.end());

  auto cur_it = keys_of_.find(id);
  if (cur_it != keys_of_.end()) {
    for (const core::Value& key : cur_it->second) {
      if (!std::binary_search(desired.begin(), desired.end(), key,
                              core::Value::Less{})) {
        Erase(key, id);
      }
    }
  }
  for (const core::Value& key : desired) Insert(key, id);

  if (desired.empty()) {
    if (cur_it != keys_of_.end()) keys_of_.erase(cur_it);
  } else {
    keys_of_[id] = std::move(desired);
  }
}

std::vector<ObjectId> AttributeIndex::Lookup(const core::Value& key) const {
  CountProbe();
  auto it = hash_.find(key);
  if (it == hash_.end()) return {};
  return Typed<ObjectId>(it->second->second);
}

std::vector<RelationshipId> AttributeIndex::LookupRels(
    const core::Value& key) const {
  CountProbe();
  auto it = hash_.find(key);
  if (it == hash_.end()) return {};
  return Typed<RelationshipId>(it->second->second);
}

size_t AttributeIndex::CountEquals(const core::Value& key) const {
  auto it = hash_.find(key);
  return it == hash_.end() ? 0 : it->second->second.size();
}

std::vector<AttributeIndex::EntryId> AttributeIndex::RangeRaw(
    const core::Value& lo, bool lo_inclusive, const core::Value& hi,
    bool hi_inclusive) const {
  CountRangeScan();
  std::vector<EntryId> out;
  auto it = lo_inclusive ? ordered_.lower_bound(lo)
                         : ordered_.upper_bound(lo);
  for (; it != ordered_.end(); ++it) {
    int c = it->first.Compare(hi);
    if (c > 0 || (c == 0 && !hi_inclusive)) break;
    out.insert(out.end(), it->second.begin(), it->second.end());
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

std::vector<ObjectId> AttributeIndex::Range(const core::Value& lo,
                                            bool lo_inclusive,
                                            const core::Value& hi,
                                            bool hi_inclusive) const {
  return Typed<ObjectId>(RangeRaw(lo, lo_inclusive, hi, hi_inclusive));
}

std::vector<RelationshipId> AttributeIndex::RangeRels(
    const core::Value& lo, bool lo_inclusive, const core::Value& hi,
    bool hi_inclusive) const {
  return Typed<RelationshipId>(RangeRaw(lo, lo_inclusive, hi, hi_inclusive));
}

double AttributeIndex::EstimateRange(const core::Value& lo, bool lo_inclusive,
                                     const core::Value& hi, bool hi_inclusive,
                                     size_t probe_limit) const {
  {
    // A backwards or degenerate range holds nothing, whatever the index
    // holds (and guards the iterator walk below: `end_it` must not
    // precede `it`).
    int c = lo.Compare(hi);
    if (c > 0 || (c == 0 && !(lo_inclusive && hi_inclusive))) return 0.0;
  }
  auto it = lo_inclusive ? ordered_.lower_bound(lo)
                         : ordered_.upper_bound(lo);
  const auto end_it = hi_inclusive ? ordered_.upper_bound(hi)
                                   : ordered_.lower_bound(hi);
  if (probe_limit == 0) {
    // No probing budget: the only free fact is empty vs non-empty.
    return it == end_it ? 0.0 : static_cast<double>(num_entries_);
  }
  size_t counted = 0;
  size_t keys_seen = 0;
  for (; it != end_it && keys_seen < probe_limit; ++it) {
    counted += it->second.size();
    ++keys_seen;
  }
  if (it == end_it) return static_cast<double>(counted);
  // Budget exhausted with keys still inside the range. Walk up to
  // probe_limit more of them (counting keys, not postings) so any range
  // spanning at most 2 x probe_limit keys still pro-rates over its
  // *actual* key population; wider than that, the equi-depth histogram
  // takes over. Either way keys outside the range never inflate the
  // estimate.
  size_t keys_ahead = 0;
  auto probe = it;
  for (; probe != end_it && keys_ahead < probe_limit; ++probe) ++keys_ahead;
  if (probe != end_it) {
    // More than 2 x probe_limit keys inside the range: the bounded walk
    // cannot see the tail, and pro-rating the walked density over every
    // key the index could still hold is unboundedly wrong under skew.
    // Answer from the equi-depth histogram instead: O(log buckets) to
    // locate the overlap, provably within half the two boundary buckets
    // of the exact count.
    common::MutexLock lock(histogram_mu_);
    if (!histogram_built_ || histogram_stamp_ != mutations_) {
      RebuildHistogramLocked();
    }
    return HistogramEstimate(lo, lo_inclusive, hi, hi_inclusive);
  }
  // At most 2 x probe_limit keys: `keys_ahead` is the exact tail key
  // count, pro-rate the walked density over just those keys.
  const double per_key =
      static_cast<double>(counted) / static_cast<double>(keys_seen);
  const double est = static_cast<double>(counted) +
                     per_key * static_cast<double>(keys_ahead);
  return est > static_cast<double>(num_entries_)
             ? static_cast<double>(num_entries_)
             : est;
}

void AttributeIndex::RebuildHistogramLocked() const {
  static obs::Counter* builds = obs::MetricsRegistry::Global().GetCounter(
      "stats.histogram.builds.total");
  builds->Increment();
  histogram_.clear();
  histogram_built_ = true;
  histogram_stamp_ = mutations_;
  if (ordered_.empty()) return;
  // Equal-frequency target depth; the closing key of a bucket may carry
  // it past the target, so a bucket holds at most target - 1 + (largest
  // posting list in it) rows.
  const size_t target =
      (num_entries_ + kHistogramBuckets - 1) / kHistogramBuckets;
  HistogramBucket bucket;
  bool open = false;
  for (const auto& [key, ids] : ordered_) {
    if (!open) {
      bucket = HistogramBucket{};
      bucket.lower = key;
      open = true;
    }
    bucket.upper = key;
    bucket.rows += ids.size();
    bucket.keys += 1;
    if (bucket.rows >= target) {
      histogram_.push_back(bucket);
      open = false;
    }
  }
  if (open) histogram_.push_back(bucket);
}

double AttributeIndex::HistogramEstimate(const core::Value& lo,
                                         bool lo_inclusive,
                                         const core::Value& hi,
                                         bool hi_inclusive) const {
  if (histogram_.empty()) return 0.0;
  // A key `v` is inside the range's lower (upper) bound:
  const auto above_lo = [&](const core::Value& v) {
    int c = v.Compare(lo);
    return c > 0 || (c == 0 && lo_inclusive);
  };
  const auto below_hi = [&](const core::Value& v) {
    int c = v.Compare(hi);
    return c < 0 || (c == 0 && hi_inclusive);
  };
  // Buckets are disjoint and ordered, so the overlapping run is found by
  // two binary searches; the constant-size walk over it (≤ 32 buckets)
  // sums full buckets exactly and boundary buckets at half weight.
  const auto first = std::partition_point(
      histogram_.begin(), histogram_.end(),
      [&](const HistogramBucket& b) { return !above_lo(b.upper); });
  const auto last = std::partition_point(
      first, histogram_.end(),
      [&](const HistogramBucket& b) { return below_hi(b.lower); });
  double est = 0.0;
  for (auto it = first; it != last; ++it) {
    const bool whole = above_lo(it->lower) && below_hi(it->upper);
    est += whole ? static_cast<double>(it->rows)
                 : static_cast<double>(it->rows) / 2.0;
  }
  return est > static_cast<double>(num_entries_)
             ? static_cast<double>(num_entries_)
             : est;
}

std::vector<AttributeIndex::HistogramBucket> AttributeIndex::Histogram()
    const {
  common::MutexLock lock(histogram_mu_);
  if (!histogram_built_ || histogram_stamp_ != mutations_) {
    RebuildHistogramLocked();
  }
  return histogram_;
}

void AttributeIndex::ForEach(
    const std::function<void(const core::Value&, ObjectId)>& fn) const {
  for (const auto& [key, ids] : ordered_) {
    for (EntryId id : ids) fn(key, ObjectId(id));
  }
}

void AttributeIndex::ForEachRel(
    const std::function<void(const core::Value&, RelationshipId)>& fn) const {
  for (const auto& [key, ids] : ordered_) {
    for (EntryId id : ids) fn(key, RelationshipId(id));
  }
}

void AttributeIndex::Clear() {
  ordered_.clear();
  hash_.clear();
  keys_of_.clear();
  num_entries_ = 0;
  ++mutations_;
}

}  // namespace seed::index
