#include "index/attribute_index.h"

#include <algorithm>

namespace seed::index {

std::string IndexSpec::ToString() const {
  std::string s = "class#" + std::to_string(cls.raw());
  if (!role.empty()) s += "." + role;
  if (!include_specializations) s += " (exact)";
  return s;
}

void AttributeIndex::Insert(const core::Value& key, ObjectId id) {
  auto it = hash_.find(key);
  if (it == hash_.end()) {
    it = hash_.emplace(key, ordered_.emplace(key, std::set<ObjectId>{}).first)
             .first;
  }
  if (it->second->second.insert(id).second) ++num_entries_;
}

void AttributeIndex::Erase(const core::Value& key, ObjectId id) {
  auto it = hash_.find(key);
  if (it == hash_.end()) return;
  if (it->second->second.erase(id) != 0) --num_entries_;
  if (it->second->second.empty()) {
    ordered_.erase(it->second);
    hash_.erase(it);
  }
}

void AttributeIndex::Set(ObjectId id, const std::vector<core::Value>& keys) {
  std::vector<core::Value> desired = keys;
  std::sort(desired.begin(), desired.end(), core::Value::Less{});
  desired.erase(std::unique(desired.begin(), desired.end(),
                            core::Value::CompareEqual{}),
                desired.end());

  auto cur_it = keys_of_.find(id);
  if (cur_it != keys_of_.end()) {
    for (const core::Value& key : cur_it->second) {
      if (!std::binary_search(desired.begin(), desired.end(), key,
                              core::Value::Less{})) {
        Erase(key, id);
      }
    }
  }
  for (const core::Value& key : desired) Insert(key, id);

  if (desired.empty()) {
    if (cur_it != keys_of_.end()) keys_of_.erase(cur_it);
  } else {
    keys_of_[id] = std::move(desired);
  }
}

std::vector<ObjectId> AttributeIndex::Lookup(const core::Value& key) const {
  auto it = hash_.find(key);
  if (it == hash_.end()) return {};
  return {it->second->second.begin(), it->second->second.end()};
}

std::vector<ObjectId> AttributeIndex::Range(const core::Value& lo,
                                            bool lo_inclusive,
                                            const core::Value& hi,
                                            bool hi_inclusive) const {
  std::vector<ObjectId> out;
  auto it = lo_inclusive ? ordered_.lower_bound(lo)
                         : ordered_.upper_bound(lo);
  for (; it != ordered_.end(); ++it) {
    int c = it->first.Compare(hi);
    if (c > 0 || (c == 0 && !hi_inclusive)) break;
    out.insert(out.end(), it->second.begin(), it->second.end());
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

void AttributeIndex::ForEach(
    const std::function<void(const core::Value&, ObjectId)>& fn) const {
  for (const auto& [key, ids] : ordered_) {
    for (ObjectId id : ids) fn(key, id);
  }
}

void AttributeIndex::Clear() {
  ordered_.clear();
  hash_.clear();
  keys_of_.clear();
  num_entries_ = 0;
}

}  // namespace seed::index
