#include "index/index_manager.h"

#include <algorithm>

#include "common/macros.h"

namespace seed::index {

Status IndexManager::ValidateSpec(const schema::Schema& schema,
                                  const IndexSpec& spec) {
  SEED_ASSIGN_OR_RETURN(const schema::ObjectClass* cls,
                        schema.GetClass(spec.cls));
  if (!spec.role.empty()) {
    auto dep = schema.ResolveSubObjectRole(spec.cls, spec.role);
    if (!dep.ok()) {
      return Status::InvalidArgument("cannot index '" + cls->full_name + "." +
                                     spec.role + "': " +
                                     std::string(dep.status().message()));
    }
  }
  return Status::OK();
}

Status IndexManager::CreateIndex(const schema::Schema& schema,
                                 IndexSpec spec) {
  SEED_RETURN_IF_ERROR(ValidateSpec(schema, spec));
  for (const auto& idx : indexes_) {
    if (idx->spec() == spec) {
      return Status::AlreadyExists("index on " + spec.ToString() +
                                   " already exists");
    }
  }
  indexes_.push_back(std::make_unique<AttributeIndex>(std::move(spec)));
  specs_dirty_ = true;
  return Status::OK();
}

void IndexManager::BackfillIndex(const schema::Schema& schema,
                                 const ObjectMap& objects,
                                 const IndexSpec& spec) {
  for (const auto& idx : indexes_) {
    if (idx->spec() != spec) continue;
    for (const auto& [id, obj] : objects) {
      if (obj.deleted || obj.is_pattern) continue;
      idx->Set(id, DesiredKeys(schema, objects, spec, id));
    }
    return;
  }
}

size_t IndexManager::PruneInvalidSpecs(const schema::Schema& schema) {
  size_t before = indexes_.size();
  indexes_.erase(
      std::remove_if(indexes_.begin(), indexes_.end(),
                     [&schema](const std::unique_ptr<AttributeIndex>& idx) {
                       return !ValidateSpec(schema, idx->spec()).ok();
                     }),
      indexes_.end());
  size_t dropped = before - indexes_.size();
  if (dropped != 0) specs_dirty_ = true;
  return dropped;
}

Status IndexManager::DropIndex(ClassId cls, std::string_view role) {
  size_t before = indexes_.size();
  indexes_.erase(
      std::remove_if(indexes_.begin(), indexes_.end(),
                     [&](const std::unique_ptr<AttributeIndex>& idx) {
                       return idx->spec().cls == cls &&
                              idx->spec().role == role;
                     }),
      indexes_.end());
  if (indexes_.size() == before) {
    return Status::NotFound("no index on class#" + std::to_string(cls.raw()) +
                            (role.empty() ? "" : "." + std::string(role)));
  }
  specs_dirty_ = true;
  return Status::OK();
}

const AttributeIndex* IndexManager::Find(const IndexSpec& spec) const {
  for (const auto& idx : indexes_) {
    if (idx->spec() == spec) return idx.get();
  }
  return nullptr;
}

const AttributeIndex* IndexManager::BestFor(const schema::Schema& schema,
                                            ClassId cls,
                                            bool include_specializations,
                                            std::string_view role) const {
  const AttributeIndex* broader = nullptr;
  for (const auto& idx : indexes_) {
    const IndexSpec& spec = idx->spec();
    if (spec.role != role) continue;
    if (spec.cls == cls && spec.include_specializations ==
                               include_specializations) {
      return idx.get();  // exact: covers the query extent precisely
    }
    // A usable broader index covers a superset of the query extent: either
    // a family index rooted at `cls` or at an ancestor of it, or an exact
    // index when the query itself is exact on the same class.
    bool covers =
        spec.include_specializations
            ? schema.IsSameOrSpecializationOf(cls, spec.cls)
            : (!include_specializations && spec.cls == cls);
    if (covers && broader == nullptr) broader = idx.get();
  }
  return broader;
}

std::vector<core::Value> IndexManager::DesiredKeys(
    const schema::Schema& schema, const ObjectMap& objects,
    const IndexSpec& spec, ObjectId id) {
  auto it = objects.find(id);
  if (it == objects.end()) return {};
  const core::ObjectItem& obj = it->second;
  if (obj.deleted || obj.is_pattern) return {};
  bool covered = spec.include_specializations
                     ? schema.IsSameOrSpecializationOf(obj.cls, spec.cls)
                     : obj.cls == spec.cls;
  if (!covered) return {};

  std::vector<core::Value> keys;
  if (spec.role.empty()) {
    if (obj.value.defined()) keys.push_back(obj.value);
    return keys;
  }
  // Sub-object role: one key per live child whose class name is the role
  // (matching Database::SubObjects / Predicate::OnSubObject semantics);
  // children with undefined values stay out, per the paper.
  for (ObjectId child_id : obj.children) {
    auto child_it = objects.find(child_id);
    if (child_it == objects.end()) continue;
    const core::ObjectItem& child = child_it->second;
    if (child.deleted || !child.value.defined()) continue;
    auto child_cls = schema.GetClass(child.cls);
    if (!child_cls.ok() || (*child_cls)->name != spec.role) continue;
    keys.push_back(child.value);
  }
  return keys;
}

void IndexManager::RefreshObject(const schema::Schema& schema,
                                 const ObjectMap& objects, ObjectId id) {
  for (const auto& idx : indexes_) {
    idx->Set(id, DesiredKeys(schema, objects, idx->spec(), id));
  }
}

void IndexManager::RefreshAll(const schema::Schema& schema,
                              const ObjectMap& objects) {
  ClearEntries();
  for (const auto& [id, obj] : objects) {
    if (!obj.deleted && !obj.is_pattern) RefreshObject(schema, objects, id);
  }
}

void IndexManager::ClearEntries() {
  for (const auto& idx : indexes_) idx->Clear();
}

void IndexManager::EncodeSpecs(Encoder* enc) const {
  enc->PutVarint(indexes_.size());
  for (const auto& idx : indexes_) {
    const IndexSpec& spec = idx->spec();
    enc->PutVarint(spec.cls.raw());
    enc->PutString(spec.role);
    enc->PutBool(spec.include_specializations);
  }
}

Result<std::vector<IndexSpec>> IndexManager::DecodeSpecs(Decoder* dec) {
  SEED_ASSIGN_OR_RETURN(std::uint64_t count, dec->GetVarint());
  std::vector<IndexSpec> specs;
  specs.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    IndexSpec spec;
    SEED_ASSIGN_OR_RETURN(std::uint64_t cls_raw, dec->GetVarint());
    spec.cls = ClassId(cls_raw);
    SEED_ASSIGN_OR_RETURN(spec.role, dec->GetString());
    SEED_ASSIGN_OR_RETURN(spec.include_specializations, dec->GetBool());
    specs.push_back(std::move(spec));
  }
  return specs;
}

}  // namespace seed::index
