#include "index/index_manager.h"

#include <algorithm>

#include "common/macros.h"
#include "obs/metrics.h"

namespace seed::index {

namespace {

/// Marks a v2 (extent-tagged) spec catalog. v1 catalogs start with their
/// spec count instead; any real count stays far below this sentinel, so
/// the first varint disambiguates the two layouts.
constexpr std::uint64_t kSpecCatalogV2Marker = 0x5EEDCA7A0002ull;

/// One key per live defined-valued child in `children` whose class name
/// is `role` — the shared derivation for object sub-object roles and
/// relationship attribute roles (matching Database::SubObjects /
/// Predicate::OnSubObject semantics; undefined children stay out, per
/// the paper).
std::vector<core::Value> CollectRoleKeys(
    const schema::Schema& schema, const IndexManager::ObjectMap& objects,
    const std::vector<ObjectId>& children, const std::string& role) {
  std::vector<core::Value> keys;
  for (ObjectId child_id : children) {
    auto child_it = objects.find(child_id);
    if (child_it == objects.end()) continue;
    const core::ObjectItem& child = child_it->second;
    if (child.deleted || !child.value.defined()) continue;
    auto child_cls = schema.GetClass(child.cls);
    if (!child_cls.ok() || (*child_cls)->name != role) continue;
    keys.push_back(child.value);
  }
  return keys;
}

}  // namespace

Status IndexManager::ValidateSpec(const schema::Schema& schema,
                                  const IndexSpec& spec) {
  if (spec.on_relationships()) {
    SEED_ASSIGN_OR_RETURN(const schema::Association* assoc,
                          schema.GetAssociation(spec.assoc));
    if (spec.role.empty()) {
      return Status::InvalidArgument(
          "relationship index on '" + assoc->name +
          "' needs an attribute role (relationships carry no own value)");
    }
    auto dep = schema.ResolveSubObjectRole(spec.assoc, spec.role);
    if (!dep.ok()) {
      return Status::InvalidArgument("cannot index '" + assoc->name + "." +
                                     spec.role + "': " +
                                     std::string(dep.status().message()));
    }
    return Status::OK();
  }
  SEED_ASSIGN_OR_RETURN(const schema::ObjectClass* cls,
                        schema.GetClass(spec.cls));
  if (!spec.role.empty()) {
    auto dep = schema.ResolveSubObjectRole(spec.cls, spec.role);
    if (!dep.ok()) {
      return Status::InvalidArgument("cannot index '" + cls->full_name + "." +
                                     spec.role + "': " +
                                     std::string(dep.status().message()));
    }
  }
  return Status::OK();
}

Status IndexManager::CreateIndex(const schema::Schema& schema,
                                 IndexSpec spec) {
  SEED_RETURN_IF_ERROR(ValidateSpec(schema, spec));
  for (const auto& idx : indexes_) {
    if (idx->spec() == spec) {
      return Status::AlreadyExists("index on " + spec.ToString() +
                                   " already exists");
    }
  }
  if (spec.on_relationships()) ++num_rel_indexes_;
  indexes_.push_back(std::make_unique<AttributeIndex>(std::move(spec)));
  specs_dirty_ = true;
  return Status::OK();
}

void IndexManager::BackfillIndex(const schema::Schema& schema,
                                 const ObjectMap& objects,
                                 const RelationshipMap& relationships,
                                 const IndexSpec& spec) {
  for (const auto& idx : indexes_) {
    if (idx->spec() != spec) continue;
    if (spec.on_relationships()) {
      for (const auto& [id, rel] : relationships) {
        if (rel.deleted || rel.is_pattern) continue;
        idx->Set(id, DesiredRelationshipKeys(schema, objects, relationships,
                                             spec, id));
      }
    } else {
      for (const auto& [id, obj] : objects) {
        if (obj.deleted || obj.is_pattern) continue;
        idx->Set(id, DesiredKeys(schema, objects, spec, id));
      }
    }
    return;
  }
}

size_t IndexManager::PruneInvalidSpecs(const schema::Schema& schema) {
  size_t before = indexes_.size();
  indexes_.erase(
      std::remove_if(indexes_.begin(), indexes_.end(),
                     [&schema](const std::unique_ptr<AttributeIndex>& idx) {
                       return !ValidateSpec(schema, idx->spec()).ok();
                     }),
      indexes_.end());
  size_t dropped = before - indexes_.size();
  if (dropped != 0) specs_dirty_ = true;
  num_rel_indexes_ = 0;
  for (const auto& idx : indexes_) {
    if (idx->spec().on_relationships()) ++num_rel_indexes_;
  }
  return dropped;
}

Status IndexManager::DropIndex(ClassId cls, std::string_view role) {
  size_t before = indexes_.size();
  indexes_.erase(
      std::remove_if(indexes_.begin(), indexes_.end(),
                     [&](const std::unique_ptr<AttributeIndex>& idx) {
                       return !idx->spec().on_relationships() &&
                              idx->spec().cls == cls &&
                              idx->spec().role == role;
                     }),
      indexes_.end());
  if (indexes_.size() == before) {
    return Status::NotFound("no index on class#" + std::to_string(cls.raw()) +
                            (role.empty() ? "" : "." + std::string(role)));
  }
  specs_dirty_ = true;
  return Status::OK();
}

Status IndexManager::DropIndex(AssociationId assoc, std::string_view role) {
  size_t before = indexes_.size();
  indexes_.erase(
      std::remove_if(indexes_.begin(), indexes_.end(),
                     [&](const std::unique_ptr<AttributeIndex>& idx) {
                       return idx->spec().on_relationships() &&
                              idx->spec().assoc == assoc &&
                              (role.empty() || idx->spec().role == role);
                     }),
      indexes_.end());
  if (indexes_.size() == before) {
    return Status::NotFound("no index on assoc#" +
                            std::to_string(assoc.raw()) +
                            (role.empty() ? "" : "." + std::string(role)));
  }
  num_rel_indexes_ -= before - indexes_.size();
  specs_dirty_ = true;
  return Status::OK();
}

const AttributeIndex* IndexManager::Find(const IndexSpec& spec) const {
  for (const auto& idx : indexes_) {
    if (idx->spec() == spec) return idx.get();
  }
  return nullptr;
}

const AttributeIndex* IndexManager::BestFor(const schema::Schema& schema,
                                            ClassId cls,
                                            bool include_specializations,
                                            std::string_view role) const {
  const AttributeIndex* broader = nullptr;
  for (const auto& idx : indexes_) {
    const IndexSpec& spec = idx->spec();
    if (spec.on_relationships() || spec.role != role) continue;
    if (spec.cls == cls && spec.include_specializations ==
                               include_specializations) {
      return idx.get();  // exact: covers the query extent precisely
    }
    // A usable broader index covers a superset of the query extent: either
    // a family index rooted at `cls` or at an ancestor of it, or an exact
    // index when the query itself is exact on the same class.
    bool covers =
        spec.include_specializations
            ? schema.IsSameOrSpecializationOf(cls, spec.cls)
            : (!include_specializations && spec.cls == cls);
    if (covers && broader == nullptr) broader = idx.get();
  }
  return broader;
}

const AttributeIndex* IndexManager::BestForRelationships(
    const schema::Schema& schema, AssociationId assoc,
    bool include_specializations, std::string_view role) const {
  const AttributeIndex* broader = nullptr;
  for (const auto& idx : indexes_) {
    const IndexSpec& spec = idx->spec();
    if (!spec.on_relationships() || spec.role != role) continue;
    if (spec.assoc == assoc &&
        spec.include_specializations == include_specializations) {
      return idx.get();
    }
    bool covers =
        spec.include_specializations
            ? schema.IsSameOrSpecializationOf(assoc, spec.assoc)
            : (!include_specializations && spec.assoc == assoc);
    if (covers && broader == nullptr) broader = idx.get();
  }
  return broader;
}

std::vector<core::Value> IndexManager::DesiredKeys(
    const schema::Schema& schema, const ObjectMap& objects,
    const IndexSpec& spec, ObjectId id) {
  if (spec.on_relationships()) return {};
  auto it = objects.find(id);
  if (it == objects.end()) return {};
  const core::ObjectItem& obj = it->second;
  if (obj.deleted || obj.is_pattern) return {};
  bool covered = spec.include_specializations
                     ? schema.IsSameOrSpecializationOf(obj.cls, spec.cls)
                     : obj.cls == spec.cls;
  if (!covered) return {};

  if (spec.role.empty()) {
    std::vector<core::Value> keys;
    if (obj.value.defined()) keys.push_back(obj.value);
    return keys;
  }
  return CollectRoleKeys(schema, objects, obj.children, spec.role);
}

std::vector<core::Value> IndexManager::DesiredRelationshipKeys(
    const schema::Schema& schema, const ObjectMap& objects,
    const RelationshipMap& relationships, const IndexSpec& spec,
    RelationshipId id) {
  if (!spec.on_relationships()) return {};
  auto it = relationships.find(id);
  if (it == relationships.end()) return {};
  const core::RelationshipItem& rel = it->second;
  if (rel.deleted || rel.is_pattern) return {};
  bool covered = spec.include_specializations
                     ? schema.IsSameOrSpecializationOf(rel.assoc, spec.assoc)
                     : rel.assoc == spec.assoc;
  if (!covered) return {};
  return CollectRoleKeys(schema, objects, rel.children, spec.role);
}

namespace {

/// One incremental entry refresh (object or relationship) across the
/// registered indexes.
void CountRefresh() {
  static obs::Counter* refreshes =
      obs::MetricsRegistry::Global().GetCounter("index.refreshes.total");
  refreshes->Increment();
}

}  // namespace

void IndexManager::RefreshObject(const schema::Schema& schema,
                                 const ObjectMap& objects, ObjectId id) {
  CountRefresh();
  for (const auto& idx : indexes_) {
    if (idx->spec().on_relationships()) continue;
    idx->Set(id, DesiredKeys(schema, objects, idx->spec(), id));
  }
}

void IndexManager::RefreshRelationship(const schema::Schema& schema,
                                       const ObjectMap& objects,
                                       const RelationshipMap& relationships,
                                       RelationshipId id) {
  CountRefresh();
  for (const auto& idx : indexes_) {
    if (!idx->spec().on_relationships()) continue;
    idx->Set(id, DesiredRelationshipKeys(schema, objects, relationships,
                                         idx->spec(), id));
  }
}

void IndexManager::RefreshAll(const schema::Schema& schema,
                              const ObjectMap& objects,
                              const RelationshipMap& relationships) {
  ClearEntries();
  for (const auto& [id, obj] : objects) {
    if (!obj.deleted && !obj.is_pattern) RefreshObject(schema, objects, id);
  }
  if (num_rel_indexes_ == 0) return;
  for (const auto& [id, rel] : relationships) {
    if (!rel.deleted && !rel.is_pattern) {
      RefreshRelationship(schema, objects, relationships, id);
    }
  }
}

void IndexManager::ClearEntries() {
  for (const auto& idx : indexes_) idx->Clear();
}

void IndexManager::EncodeSpecs(Encoder* enc) const {
  // Catalog format v2: a leading marker, then a per-spec extent tag that
  // distinguishes object from relationship indexes. v1 catalogs (class
  // specs only, no marker, no tags) are still decoded below.
  enc->PutVarint(kSpecCatalogV2Marker);
  enc->PutVarint(indexes_.size());
  for (const auto& idx : indexes_) {
    const IndexSpec& spec = idx->spec();
    enc->PutVarint(spec.on_relationships() ? 1 : 0);
    enc->PutVarint(spec.on_relationships() ? spec.assoc.raw()
                                           : spec.cls.raw());
    enc->PutString(spec.role);
    enc->PutBool(spec.include_specializations);
  }
}

Result<std::vector<IndexSpec>> IndexManager::DecodeSpecs(Decoder* dec) {
  SEED_ASSIGN_OR_RETURN(std::uint64_t first, dec->GetVarint());
  bool v2 = first == kSpecCatalogV2Marker;
  std::uint64_t count = first;
  if (v2) {
    SEED_ASSIGN_OR_RETURN(count, dec->GetVarint());
  }
  std::vector<IndexSpec> specs;
  // Do not trust a corrupt count for the allocation; the vector grows as
  // entries actually decode.
  specs.reserve(std::min<std::uint64_t>(count, 1024));
  for (std::uint64_t i = 0; i < count; ++i) {
    IndexSpec spec;
    std::uint64_t kind = 0;
    if (v2) {
      SEED_ASSIGN_OR_RETURN(kind, dec->GetVarint());
      if (kind > 1) {
        return Status::Corruption("unknown index-spec extent tag " +
                                  std::to_string(kind));
      }
    }
    SEED_ASSIGN_OR_RETURN(std::uint64_t id_raw, dec->GetVarint());
    if (kind == 1) {
      spec.assoc = AssociationId(id_raw);
    } else {
      spec.cls = ClassId(id_raw);
    }
    SEED_ASSIGN_OR_RETURN(spec.role, dec->GetString());
    SEED_ASSIGN_OR_RETURN(spec.include_specializations, dec->GetBool());
    specs.push_back(std::move(spec));
  }
  return specs;
}

}  // namespace seed::index
