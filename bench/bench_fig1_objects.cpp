// Experiment F1 (paper Fig. 1): hierarchical object structures.
//
// Measures the cost of building Fig. 1-shaped object trees (independent
// object, Text/Body/Selector/Keywords sub-objects), resolving dotted-path
// names, and composing full names — the bread-and-butter operations of the
// SEED prototype's "simple retrieval by name" interface.

#include <benchmark/benchmark.h>

#include "core/database.h"
#include "spades/spec_schema.h"

namespace {

using seed::core::Database;
using seed::core::Value;
using seed::ObjectId;

seed::spades::Fig2Schema& Fig2() {
  static auto schema = *seed::spades::BuildFig2Schema();
  return schema;
}

/// Builds one Fig. 1 structure under `name`; returns the root.
ObjectId BuildAlarmsTree(Database* db, const std::string& name) {
  ObjectId root = *db->CreateObject(Fig2().ids.data, name);
  ObjectId text = *db->CreateSubObject(root, "Text");
  ObjectId body = *db->CreateSubObject(text, "Body");
  ObjectId contents = *db->CreateSubObject(body, "Contents");
  (void)db->SetValue(contents,
                     Value::String("Alarms are represented in an alarm "
                                   "display matrix"));
  ObjectId selector = *db->CreateSubObject(text, "Selector");
  (void)db->SetValue(selector, Value::String("Representation"));
  for (const char* kw : {"Alarmhandling", "Display"}) {
    ObjectId k = *db->CreateSubObject(body, "Keywords");
    (void)db->SetValue(k, Value::String(kw));
  }
  return root;
}

void BM_Fig1_BuildObjectTree(benchmark::State& state) {
  for (auto _ : state) {
    Database db(Fig2().schema);
    for (int i = 0; i < state.range(0); ++i) {
      benchmark::DoNotOptimize(
          BuildAlarmsTree(&db, "Alarms_" + std::to_string(i)));
    }
  }
  state.SetItemsProcessed(state.iterations() * state.range(0) * 7);
  state.counters["objects_per_tree"] = 7;
}
BENCHMARK(BM_Fig1_BuildObjectTree)->Arg(1)->Arg(10)->Arg(100)->Arg(1000);

void BM_Fig1_FindByDottedPath(benchmark::State& state) {
  Database db(Fig2().schema);
  for (int i = 0; i < state.range(0); ++i) {
    BuildAlarmsTree(&db, "Alarms_" + std::to_string(i));
  }
  std::string path =
      "Alarms_" + std::to_string(state.range(0) / 2) +
      ".Text[0].Body.Keywords[1]";
  for (auto _ : state) {
    auto id = db.FindObjectByName(path);
    benchmark::DoNotOptimize(id);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Fig1_FindByDottedPath)->Arg(10)->Arg(100)->Arg(1000);

void BM_Fig1_ComposeFullName(benchmark::State& state) {
  Database db(Fig2().schema);
  BuildAlarmsTree(&db, "Alarms");
  ObjectId leaf = *db.FindObjectByName("Alarms.Text[0].Body.Keywords[1]");
  for (auto _ : state) {
    std::string name = db.FullName(leaf);
    benchmark::DoNotOptimize(name);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Fig1_ComposeFullName);

void BM_Fig1_SubObjectNavigation(benchmark::State& state) {
  Database db(Fig2().schema);
  ObjectId root = BuildAlarmsTree(&db, "Alarms");
  for (auto _ : state) {
    for (ObjectId text : db.SubObjects(root, "Text")) {
      for (ObjectId body : db.SubObjects(text, "Body")) {
        benchmark::DoNotOptimize(db.SubObjects(body, "Keywords"));
      }
    }
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Fig1_SubObjectNavigation);

void BM_Fig1_DeleteCascade(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    Database db(Fig2().schema);
    std::vector<ObjectId> roots;
    for (int i = 0; i < state.range(0); ++i) {
      roots.push_back(BuildAlarmsTree(&db, "Alarms_" + std::to_string(i)));
    }
    state.ResumeTiming();
    for (ObjectId root : roots) {
      benchmark::DoNotOptimize(db.DeleteObject(root));
    }
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Fig1_DeleteCascade)->Arg(10)->Arg(100);

}  // namespace

BENCHMARK_MAIN();
