// The tracked perf trajectory driver (no google-benchmark dependency —
// built unconditionally, CI runs it on every push). Replays a fixed mix
// of engine scenarios seeded from the spades workload and the skewed
// 5-hop join chain, and emits one BENCH_*.json with per-scenario
// latency, throughput, and rows visited. The rows-visited figures come
// from the metrics registry ("query.rows.visited.total"), the same
// source EXPLAIN ANALYZE and the shell report — so the committed
// baseline gates the planner, not the harness.
//
//   bench_trajectory [--scale=N] [--out=FILE] [--metrics-out=FILE]
//                    [--check=BASELINE.json] [--overhead-check]
//
//   --scale=N         workload size knob (default 1000)
//   --out=FILE        write the trajectory JSON to FILE (default stdout)
//   --metrics-out=FILE  also dump the full metrics registry JSON
//   --check=BASELINE  run at the baseline's scale and exit 1 when any
//                     scenario visits more than 2x the baseline's rows
//   --overhead-check  measure the join chain with metrics on vs. off and
//                     exit 1 when the enabled path is more than 5% slower

#include <algorithm>
#include <array>
#include <atomic>
#include <cinttypes>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/database.h"
#include "exec/exec_policy.h"
#include "multiuser/client.h"
#include "multiuser/server.h"
#include "obs/metrics.h"
#include "query/parser.h"
#include "query/plan_cache.h"
#include "query/planner.h"
#include "schema/schema_builder.h"
#include "spades/spec_schema.h"
#include "spades/spec_tool.h"
#include "spades/workload.h"
#include "version/version_manager.h"

#include "skewed_chain.h"

namespace {

using seed::core::Database;
using seed::core::Value;
using seed::ObjectId;
using seed::query::Planner;
using seed::version::VersionId;
using seed::version::VersionManager;

constexpr int kSchemaVersion = 1;
constexpr int kPr = 10;

[[noreturn]] void Die(const std::string& what, const seed::Status& s) {
  std::fprintf(stderr, "bench_trajectory: %s: %s\n", what.c_str(),
               s.ToString().c_str());
  std::exit(1);
}

void Check(const seed::Status& s, const char* what) {
  if (!s.ok()) Die(what, s);
}

std::uint64_t RowsVisitedCounter() {
  const seed::obs::Counter* c =
      seed::obs::MetricsRegistry::Global().FindCounter(
          "query.rows.visited.total");
  return c == nullptr ? 0 : c->value();
}

struct ScenarioResult {
  std::string name;
  std::uint64_t ops = 0;
  std::uint64_t elapsed_ns = 0;
  std::uint64_t rows_visited = 0;
  /// Extra `"key": value` pairs appended to the scenario's JSON object
  /// (informational only — the rows-visited gate never reads them).
  std::string extra_json;
};

// --- Per-scenario query-phase quantiles ------------------------------------
//
// Every textual query records its phase durations into the global
// query.phase.<phase>.ns histograms (obs/trace.h), whether or not it
// asked for a trace. Diffing the bucket counts around a scenario yields
// that scenario's own latency distribution, from which p50/p99 come out
// as bucket lower bounds (log2 buckets: exact to within 2x, stable
// across machines in shape if not in absolute value).

using PhaseBuckets =
    std::array<std::uint64_t, seed::obs::Histogram::kNumBuckets>;

const char* const kPhaseHistograms[seed::obs::kNumQueryPhases] = {
    "query.phase.parse.ns", "query.phase.lower.ns",
    "query.phase.optimize.ns", "query.phase.execute.ns"};

PhaseBuckets SnapshotPhaseBuckets(int phase) {
  const seed::obs::Histogram* h =
      seed::obs::MetricsRegistry::Global().GetHistogram(
          kPhaseHistograms[phase]);
  PhaseBuckets out{};
  for (std::size_t i = 0; i < out.size(); ++i) out[i] = h->bucket(i);
  return out;
}

std::uint64_t DeltaQuantile(const PhaseBuckets& before,
                            const PhaseBuckets& after, double q) {
  std::uint64_t total = 0;
  for (std::size_t i = 0; i < before.size(); ++i) total += after[i] - before[i];
  if (total == 0) return 0;
  std::uint64_t rank =
      static_cast<std::uint64_t>(q * static_cast<double>(total));
  if (rank == 0) rank = 1;
  if (rank > total) rank = total;
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < before.size(); ++i) {
    cumulative += after[i] - before[i];
    if (cumulative >= rank) {
      return seed::obs::Histogram::BucketLowerBound(i);
    }
  }
  return seed::obs::Histogram::BucketLowerBound(before.size() - 1);
}

/// Times `fn` (which returns its op count), attributes the registry's
/// rows-visited delta to the scenario, and records the scenario's own
/// query-phase p50/p99 (phases that saw no queries are omitted).
template <typename Fn>
ScenarioResult RunScenario(const std::string& name, Fn&& fn) {
  ScenarioResult result;
  result.name = name;
  PhaseBuckets phases_before[seed::obs::kNumQueryPhases];
  for (int p = 0; p < seed::obs::kNumQueryPhases; ++p) {
    phases_before[p] = SnapshotPhaseBuckets(p);
  }
  std::uint64_t rows_before = RowsVisitedCounter();
  std::uint64_t start = seed::obs::NowNanos();
  result.ops = fn();
  result.elapsed_ns = seed::obs::NowNanos() - start;
  result.rows_visited = RowsVisitedCounter() - rows_before;
  for (int p = 0; p < seed::obs::kNumQueryPhases; ++p) {
    PhaseBuckets after = SnapshotPhaseBuckets(p);
    std::uint64_t p50 = DeltaQuantile(phases_before[p], after, 0.5);
    std::uint64_t p99 = DeltaQuantile(phases_before[p], after, 0.99);
    if (p50 == 0 && p99 == 0) continue;
    char buf[96];
    std::snprintf(buf, sizeof(buf),
                  "%s\"%s_p50_ns\": %" PRIu64 ", \"%s_p99_ns\": %" PRIu64,
                  result.extra_json.empty() ? "" : ", ",
                  seed::obs::QueryPhaseName(
                      static_cast<seed::obs::QueryPhase>(p)),
                  p50,
                  seed::obs::QueryPhaseName(
                      static_cast<seed::obs::QueryPhase>(p)),
                  p99);
    result.extra_json += buf;
  }
  std::fprintf(stderr, "  %-28s %8" PRIu64 " ops  %10.3f ms  %12" PRIu64
                       " rows visited\n",
               result.name.c_str(), result.ops,
               static_cast<double>(result.elapsed_ns) / 1e6,
               result.rows_visited);
  return result;
}

// --- Scenarios -------------------------------------------------------------

/// The spades specification session: vague entry, refinement, dataflows,
/// nesting, interleaved retrieval.
std::uint64_t BulkLoad(int scale) {
  auto tool = seed::spades::SeedSpecTool::Create();
  if (!tool.ok()) Die("SeedSpecTool::Create", tool.status());
  seed::spades::SessionParams params;
  params.num_actions = static_cast<std::size_t>(scale) / 10;
  params.num_data = static_cast<std::size_t>(scale) / 10;
  params.num_queries = static_cast<std::size_t>(scale) / 10;
  auto stats = seed::spades::RunSession(tool->get(), params);
  if (!stats.ok()) Die("RunSession", stats.status());
  return stats->mutations + stats->queries;
}

/// Alternating SetValue and textual queries over a Fig. 3 population.
std::uint64_t MutateQueryMix(int scale) {
  auto fig3 = seed::spades::BuildFig3Schema();
  if (!fig3.ok()) Die("BuildFig3Schema", fig3.status());
  Database db(fig3->schema);
  int n = std::max(10, scale / 10);
  std::vector<ObjectId> descs;
  for (int i = 0; i < n; ++i) {
    auto obj = db.CreateObject(fig3->ids.data, "Data_" + std::to_string(i));
    if (!obj.ok()) Die("CreateObject", obj.status());
    auto desc = db.CreateSubObject(*obj, "Description");
    if (!desc.ok()) Die("CreateSubObject", desc.status());
    Check(db.SetValue(*desc, Value::String("item " + std::to_string(i))),
          "SetValue");
    descs.push_back(*desc);
  }
  std::uint64_t ops = 0;
  for (int i = 0; i < scale; ++i) {
    if (i % 2 == 0) {
      Check(db.SetValue(descs[static_cast<std::size_t>(i / 2) % descs.size()],
                        Value::String("rev " + std::to_string(i))),
            "SetValue");
    } else {
      auto r = seed::query::RunQuery(
          db, "find Data where name contains \"Data_1\"");
      if (!r.ok()) Die("RunQuery", r.status());
    }
    ++ops;
  }
  return ops;
}

/// Objects oscillating along the generalization path Thing <-> Data.
std::uint64_t ReclassifyStorm(int scale) {
  auto fig3 = seed::spades::BuildFig3Schema();
  if (!fig3.ok()) Die("BuildFig3Schema", fig3.status());
  Database db(fig3->schema);
  int n = std::max(4, scale / 4);
  std::vector<ObjectId> objs;
  for (int i = 0; i < n; ++i) {
    auto obj = db.CreateObject(fig3->ids.thing, "T_" + std::to_string(i));
    if (!obj.ok()) Die("CreateObject", obj.status());
    objs.push_back(*obj);
  }
  std::uint64_t ops = 0;
  for (int round = 0; round < 2; ++round) {
    for (ObjectId obj : objs) {
      Check(db.Reclassify(obj, fig3->ids.data), "Reclassify to Data");
      ++ops;
      Check(db.Reclassify(obj, fig3->ids.thing), "Reclassify to Thing");
      ++ops;
    }
  }
  return ops;
}

/// A version chain built from batched mutations, then repeated restores.
std::uint64_t VersionRestore(int scale) {
  auto fig3 = seed::spades::BuildFig3Schema();
  if (!fig3.ok()) Die("BuildFig3Schema", fig3.status());
  Database db(fig3->schema);
  VersionManager vm(&db);
  const int kVersions = 8;
  int per_version = std::max(1, scale / (10 * kVersions));
  std::uint64_t ops = 0;
  std::vector<VersionId> versions;
  for (int v = 0; v < kVersions; ++v) {
    for (int i = 0; i < per_version; ++i) {
      auto obj = db.CreateObject(
          fig3->ids.action,
          "A_" + std::to_string(v) + "_" + std::to_string(i));
      if (!obj.ok()) Die("CreateObject", obj.status());
      ++ops;
    }
    auto id = vm.CreateVersion();
    if (!id.ok()) Die("CreateVersion", id.status());
    versions.push_back(*id);
    ++ops;
  }
  int restores = std::max(4, std::min(scale / 10, 64));
  for (int r = 0; r < restores; ++r) {
    Check(vm.SelectVersion(
              versions[static_cast<std::size_t>(r) % versions.size()]),
          "SelectVersion");
    ++ops;
  }
  return ops;
}

/// Full checkout/edit/check-in cycles against a central server.
std::uint64_t MultiuserCheckoutCheckin(int scale) {
  auto fig3 = seed::spades::BuildFig3Schema();
  if (!fig3.ok()) Die("BuildFig3Schema", fig3.status());
  seed::multiuser::Server server(fig3->schema);
  int n = std::max(4, scale / 20);
  for (int i = 0; i < n; ++i) {
    auto a = server.master()->CreateObject(fig3->ids.action,
                                           "Action_" + std::to_string(i));
    if (!a.ok()) Die("CreateObject", a.status());
    auto d = server.master()->CreateSubObject(*a, "Description");
    if (!d.ok()) Die("CreateSubObject", d.status());
    Check(server.master()->SetValue(
              *d, Value::String("step " + std::to_string(i))),
          "SetValue");
  }
  server.master()->ClearChangeTracking();
  int rounds = std::max(1, scale / 10);
  for (int r = 0; r < rounds; ++r) {
    auto session = seed::multiuser::ClientSession::Open(&server, "bench");
    if (!session.ok()) Die("ClientSession::Open", session.status());
    std::string target = "Action_" + std::to_string(r % n);
    Check((*session)->CheckoutByName({target}), "CheckoutByName");
    auto local = (*session)->local()->FindObjectByName(target);
    if (!local.ok()) Die("FindObjectByName", local.status());
    ObjectId d = (*session)->local()->SubObjects(*local, "Description")[0];
    Check((*session)->local()->SetValue(
              d, Value::String("edited " + std::to_string(r))),
          "SetValue");
    Check((*session)->Checkin(), "Checkin");
  }
  return static_cast<std::uint64_t>(rounds);
}

/// Snapshot-read throughput under write contention: N reader sessions
/// each run a fixed count of textual queries against their pinned
/// snapshot while W writer threads push checkout/edit/check-in cycles
/// over disjoint root slices. The population and per-reader read count
/// are fixed, so rows visited are deterministic regardless of thread
/// interleaving (reads scan the Action extent; writers only change
/// attribute values, never the extent). Per-configuration reader
/// throughput and the 16-reader 0->4-writer degradation land in the
/// JSON as informational fields; the acceptance bar is degradation
/// < 20%, recorded here and checked by eye / by the PR, not gated in
/// CI (machines differ in core count).
std::uint64_t MultiuserConcurrent(std::string* extra_json) {
  static constexpr int kRoots = 64;
  static constexpr int kReadsPerReader = 400;
  static constexpr int kCommitsPerWriter = 2;
  struct Config {
    int readers;
    int writers;
  };
  constexpr Config kConfigs[] = {{1, 0},  {1, 1},  {1, 4},
                                 {4, 0},  {4, 1},  {4, 4},
                                 {16, 0}, {16, 1}, {16, 4}};

  auto fig3 = seed::spades::BuildFig3Schema();
  if (!fig3.ok()) Die("BuildFig3Schema", fig3.status());

  std::uint64_t total_reads = 0;
  std::string extra;
  double qps_16r_0w = 0.0, qps_16r_4w = 0.0;
  // Best-of-N per configuration: on a loaded or single-core machine an
  // unlucky scheduling burst can halve one run's throughput; the max
  // filters that noise the same way OverheadCheck's min-of-N filters
  // timing outliers (both sides of the 0w-vs-4w comparison get the same
  // treatment, so the degradation estimate stays fair).
  constexpr int kRepsPerConfig = 3;

  /// One measured run: fresh server, cfg.writers commit threads over
  /// disjoint root slices, cfg.readers query threads; returns reader
  /// throughput (reads/s over the reader wall-clock window).
  auto run_once = [&](const Config& cfg) -> double {
    seed::multiuser::Server server(fig3->schema);
    for (int i = 0; i < kRoots; ++i) {
      auto a = server.master()->CreateObject(fig3->ids.action,
                                             "Action_" + std::to_string(i));
      if (!a.ok()) Die("CreateObject", a.status());
      auto d = server.master()->CreateSubObject(*a, "Description");
      if (!d.ok()) Die("CreateSubObject", d.status());
      Check(server.master()->SetValue(
                *d, Value::String("step " + std::to_string(i))),
            "SetValue");
    }
    server.master()->ClearChangeTracking();
    server.PublishSnapshot();

    std::atomic<bool> go{false};
    std::vector<std::thread> writers;
    writers.reserve(static_cast<std::size_t>(cfg.writers));
    for (int w = 0; w < cfg.writers; ++w) {
      writers.emplace_back([&server, &go, w] {
        auto session = seed::multiuser::ClientSession::Open(
            &server, "writer-" + std::to_string(w));
        if (!session.ok()) Die("ClientSession::Open", session.status());
        while (!go.load(std::memory_order_acquire)) {
          std::this_thread::yield();
        }
        for (int j = 0; j < kCommitsPerWriter; ++j) {
          // Disjoint slice per writer: stripes never conflict, so every
          // cycle exercises the parallel-commit path, not retry loops.
          std::string target =
              "Action_" + std::to_string((w * 16 + j) % kRoots);
          Check((*session)->CheckoutByName({target}), "CheckoutByName");
          auto local = (*session)->local()->FindObjectByName(target);
          if (!local.ok()) Die("FindObjectByName", local.status());
          ObjectId d =
              (*session)->local()->SubObjects(*local, "Description")[0];
          Check((*session)->local()->SetValue(
                    d, Value::String("edit " + std::to_string(j))),
                "SetValue");
          Check((*session)->Checkin(), "Checkin");
        }
      });
    }
    std::vector<std::thread> readers;
    readers.reserve(static_cast<std::size_t>(cfg.readers));
    std::atomic<std::uint64_t> reads_done{0};
    std::uint64_t t0 = seed::obs::NowNanos();
    go.store(true, std::memory_order_release);
    for (int r = 0; r < cfg.readers; ++r) {
      readers.emplace_back([&server, &reads_done, r] {
        auto session = seed::multiuser::ClientSession::Open(
            &server, "reader-" + std::to_string(r));
        if (!session.ok()) Die("ClientSession::Open", session.status());
        for (int i = 0; i < kReadsPerReader; ++i) {
          // Re-pin periodically so the run also exercises pin churn
          // against concurrent publishes.
          if (i % 8 == 7) Check((*session)->Refresh(), "Refresh");
          auto result = server.Query(
              (*session)->id(),
              "find Action where name contains \"Action_1\"");
          if (!result.ok()) Die("Query", result.status());
          reads_done.fetch_add(1, std::memory_order_relaxed);
        }
      });
    }
    for (std::thread& t : readers) t.join();
    std::uint64_t reader_ns = seed::obs::NowNanos() - t0;
    for (std::thread& t : writers) t.join();

    std::uint64_t reads = reads_done.load(std::memory_order_relaxed);
    total_reads += reads;
    return reader_ns == 0 ? 0.0
                          : static_cast<double>(reads) /
                                (static_cast<double>(reader_ns) / 1e9);
  };

  for (const Config& cfg : kConfigs) {
    double best_qps = 0.0;
    for (int rep = 0; rep < kRepsPerConfig; ++rep) {
      best_qps = std::max(best_qps, run_once(cfg));
    }
    if (cfg.readers == 16 && cfg.writers == 0) qps_16r_0w = best_qps;
    if (cfg.readers == 16 && cfg.writers == 4) qps_16r_4w = best_qps;
    char buf[96];
    std::snprintf(buf, sizeof(buf), "%s\"reads_per_s_r%d_w%d\": %.0f",
                  extra.empty() ? "" : ", ", cfg.readers, cfg.writers,
                  best_qps);
    extra += buf;
  }
  double degradation =
      qps_16r_0w == 0.0 ? 0.0 : 1.0 - qps_16r_4w / qps_16r_0w;
  char buf[64];
  std::snprintf(buf, sizeof(buf), ", \"reader_degradation_16r\": %.3f",
                degradation);
  extra += buf;
  *extra_json = extra;
  std::fprintf(stderr,
               "  %-28s 16-reader throughput %.0f/s at 0 writers, %.0f/s "
               "at 4 (degradation %.1f%%)\n",
               "multiuser_concurrent", qps_16r_0w, qps_16r_4w,
               degradation * 100.0);
  return total_reads;
}

/// The textual plan-cache hot loop: one parameterized 6-hop join-chain
/// shape, run cold (cache cleared before every query) and warm (cache
/// retained, only the literal varies). The loop hard-gates the cache
/// contract in-driver, like ParallelJoinSkewed gates its rows identity:
/// warm hit rate must be >= 90%, the warm per-query optimize phase must
/// be >= 5x cheaper than cold, and both loops must visit identical rows
/// (a cached plan never changes the work). Hit rate and per-query plan
/// times land in the JSON.
std::uint64_t PlanCacheHotLoop(int scale, std::string* extra_json) {
  constexpr int kChainHops = 6;
  seed::schema::SchemaBuilder builder("PlanCacheWorld");
  std::vector<seed::ClassId> classes;
  for (int i = 0; i <= kChainHops; ++i) {
    classes.push_back(builder.AddIndependentClass(
        "C" + std::to_string(i),
        i == 0 ? seed::schema::ValueType::kInt
               : seed::schema::ValueType::kNone));
  }
  std::vector<seed::AssociationId> assocs;
  for (int i = 0; i < kChainHops; ++i) {
    assocs.push_back(builder.AddAssociation(
        "H" + std::to_string(i + 1),
        seed::schema::Role{"from", classes[static_cast<std::size_t>(i)],
                           seed::schema::Cardinality::Any()},
        seed::schema::Role{"to", classes[static_cast<std::size_t>(i) + 1],
                           seed::schema::Cardinality::Any()}));
  }
  auto schema = builder.Build();
  if (!schema.ok()) Die("SchemaBuilder::Build", schema.status());
  Database db(*schema);
  Check(db.CreateAttributeIndex({classes[0], ""}), "CreateAttributeIndex");
  int n = std::max(20, scale / 10);
  std::vector<std::vector<ObjectId>> objs(classes.size());
  for (std::size_t c = 0; c < classes.size(); ++c) {
    for (int i = 0; i < n; ++i) {
      auto obj = db.CreateObject(
          classes[c], "C" + std::to_string(c) + "_" + std::to_string(i));
      if (!obj.ok()) Die("CreateObject", obj.status());
      objs[c].push_back(*obj);
      if (c == 0) Check(db.SetValue(*obj, Value::Int(i % 10)), "SetValue");
    }
  }
  for (int h = 0; h < kChainHops; ++h) {
    for (int i = 0; i < n; ++i) {
      std::size_t hs = static_cast<std::size_t>(h);
      std::size_t is = static_cast<std::size_t>(i);
      Check(db.CreateRelationship(assocs[hs], objs[hs][is],
                                  objs[hs + 1][is])
                .status(),
            "CreateRelationship");
    }
  }

  std::string query_prefix = "find C0 b0";
  for (int i = 0; i < kChainHops; ++i) {
    query_prefix += " join via H" + std::to_string(i + 1) + " to C" +
                    std::to_string(i + 1) + " b" + std::to_string(i + 1);
  }
  constexpr int kQueries = 200;
  auto run_loop = [&](bool cold, std::uint64_t* optimize_ns,
                      std::uint64_t* rows) {
    std::uint64_t rows_before = RowsVisitedCounter();
    *optimize_ns = 0;
    for (int q = 0; q < kQueries; ++q) {
      if (cold) seed::query::PlanCache::Global().Clear();
      seed::query::QueryTrace trace;
      auto r = seed::query::RunJoinChainQuery(
          db, query_prefix + " where b0 value is " + std::to_string(q % 10),
          nullptr, &trace);
      if (!r.ok()) Die("RunJoinChainQuery", r.status());
      *optimize_ns += trace.ctx.phase_ns[static_cast<int>(
                                             seed::obs::QueryPhase::kOptimize)]
                          .load(std::memory_order_relaxed);
    }
    *rows = RowsVisitedCounter() - rows_before;
  };

  seed::query::PlanCache::Global().Clear();
  std::uint64_t cold_ns = 0, cold_rows = 0;
  run_loop(/*cold=*/true, &cold_ns, &cold_rows);
  // The cold loop's final query left its entry behind, so the warm loop
  // starts hot: every one of its lookups can hit.
  std::uint64_t hits_before = seed::obs::MetricsRegistry::Global()
                                  .GetCounter("planner.cache.hits.total")
                                  ->value();
  std::uint64_t warm_ns = 0, warm_rows = 0;
  run_loop(/*cold=*/false, &warm_ns, &warm_rows);
  std::uint64_t hits = seed::obs::MetricsRegistry::Global()
                           .GetCounter("planner.cache.hits.total")
                           ->value() -
                       hits_before;
  seed::query::PlanCache::Global().Clear();

  double hit_rate = static_cast<double>(hits) / kQueries;
  double speedup = warm_ns == 0 ? 0.0
                                : static_cast<double>(cold_ns) /
                                      static_cast<double>(warm_ns);
  char buf[192];
  std::snprintf(buf, sizeof(buf),
                "\"warm_hit_rate\": %.3f, \"cold_plan_us_per_query\": %.2f, "
                "\"warm_plan_us_per_query\": %.2f, \"plan_speedup\": %.2f",
                hit_rate, static_cast<double>(cold_ns) / 1e3 / kQueries,
                static_cast<double>(warm_ns) / 1e3 / kQueries, speedup);
  *extra_json = buf;
  std::fprintf(stderr,
               "  %-28s warm hit rate %.1f%%, plan %.2fus -> %.2fus "
               "per query (%.1fx)\n",
               "plan_cache_hot_loop", hit_rate * 100.0,
               static_cast<double>(cold_ns) / 1e3 / kQueries,
               static_cast<double>(warm_ns) / 1e3 / kQueries, speedup);
  if (hit_rate < 0.9) {
    std::fprintf(stderr, "bench_trajectory: plan_cache_hot_loop warm hit "
                         "rate %.1f%% below the 90%% gate\n",
                 hit_rate * 100.0);
    std::exit(1);
  }
  if (speedup < 5.0) {
    std::fprintf(stderr, "bench_trajectory: plan_cache_hot_loop warm "
                         "planning only %.2fx cheaper than cold "
                         "(gate: 5x)\n",
                 speedup);
    std::exit(1);
  }
  if (cold_rows != warm_rows) {
    std::fprintf(stderr,
                 "bench_trajectory: plan_cache_hot_loop visited %" PRIu64
                 " rows warm vs %" PRIu64 " cold — the cache changed the "
                 "work\n",
                 warm_rows, cold_rows);
    std::exit(1);
  }
  return 2 * kQueries;
}

/// The DP-planned skewed 5-hop chain shared with bench_query and the
/// plan-quality smoke gate.
std::uint64_t JoinChain5Hop(int scale) {
  auto world = seed::bench::BuildSkewedChain(scale * 5);
  Planner planner(world.db.get());
  const int kReps = 3;
  for (int rep = 0; rep < kReps; ++rep) {
    auto r = planner.JoinPipeline(world.inputs, world.hops);
    if (!r.ok()) Die("JoinPipeline", r.status());
  }
  return kReps;
}

/// The skewed chain at 100x scale (~100k relationships at the default
/// scale) executed at 1 and at 8 execution threads. Rows visited MUST
/// be identical — parallelism partitions the work, it never changes the
/// plan or the operators' semantics — and that sum is what the baseline
/// gate tracks. The wall-clock speedup is recorded in the JSON (and on
/// stderr) but deliberately not gated: CI machines differ in core
/// count, and a single-core runner legitimately reports ~1x.
std::uint64_t ParallelJoinSkewed(int scale, std::string* extra_json) {
  auto world = seed::bench::BuildSkewedChain(scale * 100);
  auto run_at = [&](int threads, std::uint64_t* rows_out) -> std::uint64_t {
    Planner planner(world.db.get());
    seed::exec::ExecPolicy policy = planner.exec_policy();
    policy.threads = threads;
    planner.set_exec_policy(policy);
    std::uint64_t rows_before = RowsVisitedCounter();
    std::uint64_t t0 = seed::obs::NowNanos();
    auto r = planner.JoinPipeline(world.inputs, world.hops);
    std::uint64_t dt = seed::obs::NowNanos() - t0;
    if (!r.ok()) Die("JoinPipeline", r.status());
    if (rows_out != nullptr) *rows_out = RowsVisitedCounter() - rows_before;
    return dt;
  };
  (void)run_at(1, nullptr);  // warm-up (allocator, adjacency, page cache)
  std::uint64_t rows_serial = 0, rows_parallel = 0;
  std::uint64_t ns_serial = run_at(1, &rows_serial);
  std::uint64_t ns_parallel = run_at(8, &rows_parallel);
  if (rows_serial != rows_parallel) {
    std::fprintf(stderr,
                 "bench_trajectory: parallel_join_skewed visited %" PRIu64
                 " rows at 8 threads vs %" PRIu64 " at 1 — parallel "
                 "execution changed the work\n",
                 rows_parallel, rows_serial);
    std::exit(1);
  }
  double speedup = ns_parallel == 0
                       ? 0.0
                       : static_cast<double>(ns_serial) /
                             static_cast<double>(ns_parallel);
  char buf[128];
  std::snprintf(buf, sizeof(buf),
                "\"speedup_8t_vs_1t\": %.2f, \"serial_ms\": %.3f, "
                "\"parallel_ms\": %.3f",
                speedup, static_cast<double>(ns_serial) / 1e6,
                static_cast<double>(ns_parallel) / 1e6);
  *extra_json = buf;
  std::fprintf(stderr, "  %-28s 8-thread speedup %.2fx\n",
               "parallel_join_skewed", speedup);
  return 2;
}

// --- Baseline comparison ---------------------------------------------------

/// Pulls an integer field "key": N out of a JSON blob we wrote ourselves
/// (flat, known shape — no general parser needed).
bool ExtractUint(const std::string& json, const std::string& key,
                 std::size_t from, std::uint64_t* out) {
  std::size_t at = json.find("\"" + key + "\":", from);
  if (at == std::string::npos) return false;
  at = json.find(':', at);
  *out = std::strtoull(json.c_str() + at + 1, nullptr, 10);
  return true;
}

struct Baseline {
  std::uint64_t scale = 0;
  std::vector<std::pair<std::string, std::uint64_t>> rows;  // name -> rows
};

bool LoadBaseline(const std::string& path, Baseline* out) {
  std::ifstream in(path);
  if (!in) return false;
  std::stringstream buf;
  buf << in.rdbuf();
  std::string json = buf.str();
  if (!ExtractUint(json, "scale", 0, &out->scale)) return false;
  std::size_t at = 0;
  while ((at = json.find("\"name\":", at)) != std::string::npos) {
    std::size_t q0 = json.find('"', at + 7);
    std::size_t q1 = json.find('"', q0 + 1);
    if (q0 == std::string::npos || q1 == std::string::npos) break;
    std::string name = json.substr(q0 + 1, q1 - q0 - 1);
    std::uint64_t rows = 0;
    if (!ExtractUint(json, "rows_visited", q1, &rows)) break;
    out->rows.emplace_back(name, rows);
    at = q1;
  }
  return !out->rows.empty();
}

// --- Output ----------------------------------------------------------------

void WriteTrajectory(FILE* out, int scale,
                     const std::vector<ScenarioResult>& results) {
  std::fprintf(out, "{\n  \"schema_version\": %d,\n  \"pr\": %d,\n"
                    "  \"scale\": %d,\n  \"scenarios\": [\n",
               kSchemaVersion, kPr, scale);
  for (std::size_t i = 0; i < results.size(); ++i) {
    const ScenarioResult& r = results[i];
    double ms = static_cast<double>(r.elapsed_ns) / 1e6;
    double throughput =
        r.elapsed_ns == 0 ? 0.0
                          : static_cast<double>(r.ops) /
                                (static_cast<double>(r.elapsed_ns) / 1e9);
    std::fprintf(out,
                 "    {\"name\": \"%s\", \"ops\": %" PRIu64
                 ", \"elapsed_ms\": %.3f, \"throughput_ops_per_s\": %.0f, "
                 "\"rows_visited\": %" PRIu64 "%s%s}%s\n",
                 r.name.c_str(), r.ops, ms, throughput, r.rows_visited,
                 r.extra_json.empty() ? "" : ", ", r.extra_json.c_str(),
                 i + 1 == results.size() ? "" : ",");
  }
  std::fprintf(out, "  ]\n}\n");
}

/// Times the join chain with metrics enabled vs. disabled (min of
/// `kReps`, one warm-up discarded) and fails past 5% slowdown.
int OverheadCheck(int scale) {
  auto world = seed::bench::BuildSkewedChain(scale * 5);
  Planner planner(world.db.get());
  auto run_once = [&](bool on) -> std::uint64_t {
    seed::obs::SetMetricsEnabled(on);
    std::uint64_t t0 = seed::obs::NowNanos();
    auto r = planner.JoinPipeline(world.inputs, world.hops);
    std::uint64_t dt = seed::obs::NowNanos() - t0;
    if (!r.ok()) Die("JoinPipeline", r.status());
    return dt;
  };
  // Warm-up both variants, then interleave enabled/disabled pairs so
  // clock drift, allocator warmth, and scheduler noise land on both
  // sides equally; min-of-N per side filters the remaining outliers.
  (void)run_once(true);
  (void)run_once(false);
  std::uint64_t enabled = UINT64_MAX;
  std::uint64_t disabled = UINT64_MAX;
  const int kReps = 9;
  for (int rep = 0; rep < kReps; ++rep) {
    enabled = std::min(enabled, run_once(true));
    disabled = std::min(disabled, run_once(false));
  }
  seed::obs::SetMetricsEnabled(true);
  double overhead =
      disabled == 0 ? 0.0
                    : static_cast<double>(enabled) /
                              static_cast<double>(disabled) -
                          1.0;
  std::printf("metrics overhead: enabled %.3fms, disabled %.3fms "
              "(%+.1f%%)\n",
              static_cast<double>(enabled) / 1e6,
              static_cast<double>(disabled) / 1e6, overhead * 100.0);
  if (overhead > 0.05) {
    std::fprintf(stderr, "FAIL: metrics overhead %.1f%% exceeds the 5%% "
                         "budget\n",
                 overhead * 100.0);
    return 1;
  }
  std::printf("OK: metrics overhead within the 5%% budget\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  int scale = 1000;
  std::string out_path;
  std::string metrics_out;
  std::string check_path;
  bool overhead_check = false;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto value = [&](const char* prefix) -> const char* {
      std::size_t len = std::strlen(prefix);
      return arg.compare(0, len, prefix) == 0 ? arg.c_str() + len : nullptr;
    };
    if (const char* v = value("--scale=")) {
      scale = std::atoi(v);
    } else if (const char* out_v = value("--out=")) {
      out_path = out_v;
    } else if (const char* metrics_v = value("--metrics-out=")) {
      metrics_out = metrics_v;
    } else if (const char* check_v = value("--check=")) {
      check_path = check_v;
    } else if (arg == "--overhead-check") {
      overhead_check = true;
    } else {
      std::fprintf(stderr,
                   "usage: bench_trajectory [--scale=N] [--out=FILE] "
                   "[--metrics-out=FILE] [--check=BASELINE.json] "
                   "[--overhead-check]\n");
      return 1;
    }
  }
  if (scale < 100) scale = 100;

  Baseline baseline;
  if (!check_path.empty()) {
    if (!LoadBaseline(check_path, &baseline)) {
      std::fprintf(stderr, "bench_trajectory: cannot read baseline %s\n",
                   check_path.c_str());
      return 1;
    }
    // Rows visited only compare like-for-like at the same workload size.
    scale = static_cast<int>(baseline.scale);
    std::fprintf(stderr, "checking against %s (scale %d)\n",
                 check_path.c_str(), scale);
  }

  std::fprintf(stderr, "trajectory at scale %d:\n", scale);
  std::vector<ScenarioResult> results;
  results.push_back(
      RunScenario("bulk_load", [&] { return BulkLoad(scale); }));
  results.push_back(
      RunScenario("mutate_query_mix", [&] { return MutateQueryMix(scale); }));
  results.push_back(
      RunScenario("reclassify_storm", [&] { return ReclassifyStorm(scale); }));
  results.push_back(
      RunScenario("version_restore", [&] { return VersionRestore(scale); }));
  results.push_back(RunScenario("multiuser_checkout_checkin", [&] {
    return MultiuserCheckoutCheckin(scale);
  }));
  // Scenario-specific extras append after RunScenario's own query-phase
  // quantile fields.
  auto append_extra = [&](const std::string& extra) {
    if (extra.empty()) return;
    if (!results.back().extra_json.empty()) results.back().extra_json += ", ";
    results.back().extra_json += extra;
  };
  std::string multiuser_extra;
  results.push_back(RunScenario("multiuser_concurrent", [&] {
    return MultiuserConcurrent(&multiuser_extra);
  }));
  append_extra(multiuser_extra);
  results.push_back(
      RunScenario("join_chain_5hop", [&] { return JoinChain5Hop(scale); }));
  std::string cache_extra;
  results.push_back(RunScenario("plan_cache_hot_loop", [&] {
    return PlanCacheHotLoop(scale, &cache_extra);
  }));
  append_extra(cache_extra);
  std::string parallel_extra;
  results.push_back(RunScenario("parallel_join_skewed", [&] {
    return ParallelJoinSkewed(scale, &parallel_extra);
  }));
  append_extra(parallel_extra);

  FILE* out = stdout;
  if (!out_path.empty()) {
    out = std::fopen(out_path.c_str(), "w");
    if (out == nullptr) {
      std::fprintf(stderr, "bench_trajectory: cannot write %s\n",
                   out_path.c_str());
      return 1;
    }
  }
  WriteTrajectory(out, scale, results);
  if (out != stdout) std::fclose(out);

  if (!metrics_out.empty()) {
    std::ofstream m(metrics_out);
    if (!m) {
      std::fprintf(stderr, "bench_trajectory: cannot write %s\n",
                   metrics_out.c_str());
      return 1;
    }
    m << seed::obs::MetricsRegistry::Global().ToJson() << "\n";
  }

  int exit_code = 0;
  if (!check_path.empty()) {
    for (const auto& [name, base_rows] : baseline.rows) {
      if (base_rows == 0) continue;
      for (const ScenarioResult& r : results) {
        if (r.name != name) continue;
        double ratio = static_cast<double>(r.rows_visited) /
                       static_cast<double>(base_rows);
        std::printf("%s: %" PRIu64 " rows visited vs. baseline %" PRIu64
                    " (%.2fx)\n",
                    name.c_str(), r.rows_visited, base_rows, ratio);
        if (ratio > 2.0) {
          std::fprintf(stderr, "FAIL: %s visits %.2fx the baseline's rows "
                               "(gate: 2x)\n",
                       name.c_str(), ratio);
          exit_code = 1;
        }
      }
    }
    if (exit_code == 0) {
      std::printf("OK: every scenario within 2x of the baseline's rows "
                  "visited\n");
    }
  }
  if (overhead_check && exit_code == 0) exit_code = OverheadCheck(scale);
  return exit_code;
}
