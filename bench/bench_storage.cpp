// Experiment C5: storage substrate microbenchmarks (slotted pages, buffer
// pool, WAL, KvStore) — sanity numbers for the layer everything else sits
// on, including the persistence round-trip of a populated SEED database.

#include <benchmark/benchmark.h>

#include <filesystem>

#include "core/persistence.h"
#include "spades/spec_schema.h"
#include "storage/kv_store.h"
#include "storage/slotted_page.h"

namespace {

using seed::storage::KvStore;
using seed::storage::KvStoreOptions;
using seed::storage::Page;
using seed::storage::SlottedPage;

std::string FreshDir(const char* tag) {
  static int counter = 0;
  std::string dir = std::filesystem::temp_directory_path().string() +
                    "/seed_bench_" + tag + "_" + std::to_string(::getpid()) +
                    "_" + std::to_string(counter++);
  std::filesystem::create_directories(dir);
  return dir;
}

void BM_Storage_SlottedPageInsert(benchmark::State& state) {
  std::string record(static_cast<size_t>(state.range(0)), 'r');
  for (auto _ : state) {
    Page page;
    SlottedPage sp(&page);
    sp.Init();
    while (sp.Insert(record).ok()) {
    }
    benchmark::DoNotOptimize(page);
  }
  state.SetBytesProcessed(state.iterations() * 8192);
}
BENCHMARK(BM_Storage_SlottedPageInsert)->Arg(32)->Arg(128)->Arg(512);

void BM_Storage_KvPut(benchmark::State& state) {
  std::string dir = FreshDir("put");
  KvStore kv;
  KvStoreOptions opts;
  opts.sync_on_append = false;
  (void)kv.Open(dir, opts);
  std::string value(static_cast<size_t>(state.range(0)), 'v');
  std::uint64_t key = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(kv.Put(key++ % 10000, value));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
  (void)kv.Close();
  std::filesystem::remove_all(dir);
}
BENCHMARK(BM_Storage_KvPut)->Arg(64)->Arg(512);

void BM_Storage_KvPutDurable(benchmark::State& state) {
  std::string dir = FreshDir("putd");
  KvStore kv;
  KvStoreOptions opts;
  opts.sync_on_append = true;  // fsync per mutation
  (void)kv.Open(dir, opts);
  std::string value(64, 'v');
  std::uint64_t key = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(kv.Put(key++ % 1000, value));
  }
  state.SetItemsProcessed(state.iterations());
  (void)kv.Close();
  std::filesystem::remove_all(dir);
}
BENCHMARK(BM_Storage_KvPutDurable)->Iterations(200);

void BM_Storage_KvGet(benchmark::State& state) {
  std::string dir = FreshDir("get");
  KvStore kv;
  (void)kv.Open(dir);
  std::string value(128, 'v');
  for (std::uint64_t k = 0; k < 10000; ++k) (void)kv.Put(k, value);
  std::uint64_t key = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(kv.Get(key++ % 10000));
  }
  state.SetItemsProcessed(state.iterations());
  (void)kv.Close();
  std::filesystem::remove_all(dir);
}
BENCHMARK(BM_Storage_KvGet);

void BM_Storage_KvRecovery(benchmark::State& state) {
  // Cost of opening a store whose WAL holds range(0) uncheckpointed ops.
  std::string dir = FreshDir("recover");
  {
    KvStore kv;
    (void)kv.Open(dir);
    (void)kv.Checkpoint();
    std::string value(128, 'v');
    for (int i = 0; i < state.range(0); ++i) {
      (void)kv.Put(static_cast<std::uint64_t>(i), value);
    }
    // No clean Close: copy files aside to preserve the WAL tail.
    std::filesystem::create_directories(dir + "/crash");
    std::filesystem::copy(dir + "/seed.db", dir + "/crash/seed.db");
    std::filesystem::copy(dir + "/seed.wal", dir + "/crash/seed.wal");
    (void)kv.Close();
  }
  for (auto _ : state) {
    state.PauseTiming();
    std::string crash_copy = FreshDir("recover_iter");
    std::filesystem::copy(dir + "/crash/seed.db", crash_copy + "/seed.db");
    std::filesystem::copy(dir + "/crash/seed.wal", crash_copy + "/seed.wal");
    state.ResumeTiming();
    KvStore kv;
    benchmark::DoNotOptimize(kv.Open(crash_copy));
    state.PauseTiming();
    (void)kv.Close();
    std::filesystem::remove_all(crash_copy);
    state.ResumeTiming();
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
  std::filesystem::remove_all(dir);
}
BENCHMARK(BM_Storage_KvRecovery)->Arg(100)->Arg(1000);

void BM_Storage_DatabaseSaveFull(benchmark::State& state) {
  auto fig3 = *seed::spades::BuildFig3Schema();
  seed::core::Database db(fig3.schema);
  seed::ObjectId hub = *db.CreateObject(fig3.ids.action, "Hub");
  for (int i = 0; i < state.range(0); ++i) {
    seed::ObjectId d =
        *db.CreateObject(fig3.ids.input_data, "D" + std::to_string(i));
    (void)db.CreateRelationship(fig3.ids.read, d, hub);
  }
  for (auto _ : state) {
    std::string dir = FreshDir("save");
    KvStore kv;
    (void)kv.Open(dir);
    benchmark::DoNotOptimize(seed::core::Persistence::SaveFull(db, &kv));
    (void)kv.Close();
    std::filesystem::remove_all(dir);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Storage_DatabaseSaveFull)->Arg(100)->Arg(1000);

void BM_Storage_DatabaseLoad(benchmark::State& state) {
  auto fig3 = *seed::spades::BuildFig3Schema();
  seed::core::Database db(fig3.schema);
  seed::ObjectId hub = *db.CreateObject(fig3.ids.action, "Hub");
  for (int i = 0; i < state.range(0); ++i) {
    seed::ObjectId d =
        *db.CreateObject(fig3.ids.input_data, "D" + std::to_string(i));
    (void)db.CreateRelationship(fig3.ids.read, d, hub);
  }
  std::string dir = FreshDir("load");
  {
    KvStore kv;
    (void)kv.Open(dir);
    (void)seed::core::Persistence::SaveFull(db, &kv);
    (void)kv.Close();
  }
  for (auto _ : state) {
    KvStore kv;
    (void)kv.Open(dir);
    auto loaded = seed::core::Persistence::Load(&kv);
    benchmark::DoNotOptimize(loaded);
    (void)kv.Close();
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
  std::filesystem::remove_all(dir);
}
BENCHMARK(BM_Storage_DatabaseLoad)->Arg(100)->Arg(1000);

}  // namespace

BENCHMARK_MAIN();
