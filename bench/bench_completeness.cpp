// Experiment C2: the price of the consistency/completeness split.
//
// Consistency is checked incrementally on every update (cheap, bounded);
// completeness is an explicit whole-database (or subtree) scan. This bench
// shows both sides: per-update consistency cost stays flat while the
// explicit completeness scan grows with database size — exactly the
// trade-off the paper's design intends.

#include <benchmark/benchmark.h>

#include "core/database.h"
#include "spades/spec_schema.h"

namespace {

using seed::core::Database;
using seed::core::Value;
using seed::ObjectId;

seed::spades::Fig3Schema& Fig3() {
  static auto schema = *seed::spades::BuildFig3Schema();
  return schema;
}

/// Builds a spec with `n` data objects, half of them incomplete.
std::unique_ptr<Database> BuildSpec(int n) {
  auto db = std::make_unique<Database>(Fig3().schema);
  ObjectId hub = *db->CreateObject(Fig3().ids.action, "Hub");
  for (int i = 0; i < n; ++i) {
    ObjectId d = *db->CreateObject(Fig3().ids.input_data,
                                   "D" + std::to_string(i));
    if (i % 2 == 0) {
      (void)db->CreateRelationship(Fig3().ids.read, d, hub);
    }
  }
  return db;
}

/// Explicit full completeness scan vs. database size.
void BM_Completeness_FullScan(benchmark::State& state) {
  auto db = BuildSpec(static_cast<int>(state.range(0)));
  size_t findings = 0;
  for (auto _ : state) {
    auto report = db->CheckCompleteness();
    findings = report.size();
    benchmark::DoNotOptimize(report);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
  state.counters["findings"] = static_cast<double>(findings);
}
BENCHMARK(BM_Completeness_FullScan)->Arg(100)->Arg(1000)->Arg(10000);

/// Scoped (one-object) completeness check: flat regardless of DB size.
void BM_Completeness_ScopedCheck(benchmark::State& state) {
  auto db = BuildSpec(static_cast<int>(state.range(0)));
  ObjectId probe = *db->FindObjectByName("D1");
  for (auto _ : state) {
    auto report = db->CheckCompleteness(probe);
    benchmark::DoNotOptimize(report);
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["db_objects"] =
      static_cast<double>(db->num_live_objects());
}
BENCHMARK(BM_Completeness_ScopedCheck)->Arg(100)->Arg(1000)->Arg(10000);

/// Per-update (incremental consistency) cost while the DB grows: the
/// counterpart that must NOT scale with database size.
void BM_Completeness_UpdateCostVsDbSize(benchmark::State& state) {
  auto db = BuildSpec(static_cast<int>(state.range(0)));
  ObjectId probe = *db->FindObjectByName("D1");
  ObjectId desc = *db->CreateSubObject(probe, "Description");
  int i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        db->SetValue(desc, Value::String("v" + std::to_string(i++))));
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["db_objects"] =
      static_cast<double>(db->num_live_objects());
}
BENCHMARK(BM_Completeness_UpdateCostVsDbSize)
    ->Arg(100)
    ->Arg(1000)
    ->Arg(10000);

/// What eager minimum-cardinality checking would have cost: a full
/// completeness scan after EVERY update (the design the paper rejects).
void BM_Completeness_EagerCheckingStrawman(benchmark::State& state) {
  auto db = BuildSpec(static_cast<int>(state.range(0)));
  ObjectId probe = *db->FindObjectByName("D1");
  ObjectId desc = *db->CreateSubObject(probe, "Description");
  int i = 0;
  for (auto _ : state) {
    (void)db->SetValue(desc, Value::String("v" + std::to_string(i++)));
    auto report = db->CheckCompleteness();
    benchmark::DoNotOptimize(report);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Completeness_EagerCheckingStrawman)->Arg(100)->Arg(1000);

}  // namespace

BENCHMARK_MAIN();
