// Ablation benchmarks for the design choices DESIGN.md calls out:
//
//  A1  ACYCLIC condition on vs. off — what does cycle prevention cost on
//      the containment association?
//  A2  Participation maxima finite vs. unlimited — what do role maxima
//      cost per relationship insert?
//  A3  Pattern-relationship index — effective-relationship views scale
//      with the pattern's degree, not the database's relationship count.
//  A4  Generalization depth — per-update cost as the class chain deepens.

#include <benchmark/benchmark.h>

#include "core/database.h"
#include "pattern/pattern_manager.h"
#include "schema/schema_builder.h"

namespace {

using seed::AssociationId;
using seed::ClassId;
using seed::core::CreateOptions;
using seed::core::Database;
using seed::ObjectId;
using seed::schema::Cardinality;
using seed::schema::Role;
using seed::schema::SchemaBuilder;

struct AblationSchema {
  seed::schema::SchemaPtr schema;
  ClassId node;
  AssociationId edge;
};

AblationSchema BuildGraphSchema(bool acyclic, bool bounded) {
  SchemaBuilder b(acyclic ? "AcyclicGraph" : "FreeGraph");
  AblationSchema s;
  s.node = b.AddIndependentClass("Node");
  s.edge = b.AddAssociation(
      "Edge",
      Role{"from", s.node,
           bounded ? Cardinality(0, 8) : Cardinality::Any()},
      Role{"to", s.node, Cardinality::Any()},
      acyclic);
  s.schema = *b.Build();
  return s;
}

/// A1: tree-shaped inserts with and without the ACYCLIC check.
void GraphInserts(benchmark::State& state, bool acyclic) {
  AblationSchema s = BuildGraphSchema(acyclic, /*bounded=*/false);
  for (auto _ : state) {
    state.PauseTiming();
    Database db(s.schema);
    std::vector<ObjectId> nodes;
    for (int i = 0; i < state.range(0); ++i) {
      nodes.push_back(*db.CreateObject(s.node, "N" + std::to_string(i)));
    }
    state.ResumeTiming();
    for (int i = 1; i < state.range(0); ++i) {
      benchmark::DoNotOptimize(
          db.CreateRelationship(s.edge, nodes[i], nodes[(i - 1) / 2]));
    }
  }
  state.SetItemsProcessed(state.iterations() * (state.range(0) - 1));
}

void BM_Ablation_AcyclicOn(benchmark::State& state) {
  GraphInserts(state, true);
}
BENCHMARK(BM_Ablation_AcyclicOn)->Arg(64)->Arg(512);

void BM_Ablation_AcyclicOff(benchmark::State& state) {
  GraphInserts(state, false);
}
BENCHMARK(BM_Ablation_AcyclicOff)->Arg(64)->Arg(512);

/// A2: hub inserts with finite vs. unlimited participation maxima.
void HubInserts(benchmark::State& state, bool bounded) {
  AblationSchema s = BuildGraphSchema(false, bounded);
  for (auto _ : state) {
    state.PauseTiming();
    Database db(s.schema);
    std::vector<ObjectId> spokes;
    ObjectId hub = *db.CreateObject(s.node, "Hub");
    int n = bounded ? 8 : static_cast<int>(state.range(0));
    for (int i = 0; i < n; ++i) {
      spokes.push_back(*db.CreateObject(s.node, "S" + std::to_string(i)));
    }
    state.ResumeTiming();
    for (ObjectId spoke : spokes) {
      benchmark::DoNotOptimize(db.CreateRelationship(s.edge, spoke, hub));
    }
  }
  state.SetItemsProcessed(state.iterations());
}

void BM_Ablation_MaximaFinite(benchmark::State& state) {
  HubInserts(state, true);
}
BENCHMARK(BM_Ablation_MaximaFinite)->Arg(8);

void BM_Ablation_MaximaUnlimited(benchmark::State& state) {
  HubInserts(state, false);
}
BENCHMARK(BM_Ablation_MaximaUnlimited)->Arg(8);

/// A3: effective relationships of an inheritor while UNRELATED pattern
/// relationships flood the database: with the participation index the view
/// cost depends on the pattern's own degree only.
void BM_Ablation_PatternViewVsDbSize(benchmark::State& state) {
  AblationSchema s = BuildGraphSchema(false, false);
  Database db(s.schema);
  seed::pattern::PatternManager pm(&db);
  CreateOptions pattern_opts;
  pattern_opts.pattern = true;

  ObjectId pat = *db.CreateObject(s.node, "Pat", pattern_opts);
  ObjectId anchor = *db.CreateObject(s.node, "Anchor");
  (void)*db.CreateRelationship(s.edge, pat, anchor, pattern_opts);
  ObjectId real = *db.CreateObject(s.node, "Real");
  (void)pm.Inherit(real, pat);

  // Noise: unrelated pattern relationships elsewhere in the database.
  ObjectId other_pat = *db.CreateObject(s.node, "OtherPat", pattern_opts);
  for (int i = 0; i < state.range(0); ++i) {
    ObjectId n = *db.CreateObject(s.node, "Noise" + std::to_string(i));
    (void)*db.CreateRelationship(s.edge, other_pat, n, pattern_opts);
  }

  for (auto _ : state) {
    auto rels = pm.EffectiveRelationships(real);
    benchmark::DoNotOptimize(rels);
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["noise_rels"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_Ablation_PatternViewVsDbSize)->Arg(0)->Arg(1000)->Arg(10000);

/// A4: role-name resolution cost as the generalization chain deepens.
void BM_Ablation_GeneralizationDepth(benchmark::State& state) {
  SchemaBuilder b("DeepChain");
  ClassId root = b.AddIndependentClass("L0");
  b.AddDependentClass(root, "Note", Cardinality::Any(),
                      seed::schema::ValueType::kString);
  ClassId cur = root;
  for (int i = 1; i <= state.range(0); ++i) {
    ClassId next = b.AddIndependentClass("L" + std::to_string(i));
    b.SetGeneralization(next, cur);
    cur = next;
  }
  auto schema = *b.Build();
  // Role resolution walks the generalization chain from the deepest class
  // up to the root, where "Note" is declared.
  for (auto _ : state) {
    benchmark::DoNotOptimize(schema->ResolveSubObjectRole(cur, "Note"));
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["depth"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_Ablation_GeneralizationDepth)->Arg(1)->Arg(4)->Arg(16);

}  // namespace

BENCHMARK_MAIN();
