// Experiment F5 / C4 (paper Fig. 5): patterns and variants.
//
// The paper's pattern semantics make an update of shared information O(1)
// ("any update of a pattern automatically propagates to all inheritors"),
// where a copy-based design pays O(#inheritors) per update. The read side
// pays a small overlay cost instead. This bench measures both sides plus
// variant-family construction.

#include <benchmark/benchmark.h>

#include "pattern/pattern_manager.h"
#include "pattern/variants.h"
#include "spades/spec_schema.h"

namespace {

using seed::core::CreateOptions;
using seed::core::Database;
using seed::core::Value;
using seed::ObjectId;
using seed::pattern::PatternManager;
using seed::pattern::VariantFamily;

seed::spades::Fig3Schema& Fig3() {
  static auto schema = *seed::spades::BuildFig3Schema();
  return schema;
}

struct PatternWorld {
  std::unique_ptr<Database> db;
  std::unique_ptr<PatternManager> pm;
  ObjectId pattern;
  ObjectId pattern_desc;
  std::vector<ObjectId> inheritors;
};

PatternWorld BuildWorld(int inheritors) {
  PatternWorld w;
  w.db = std::make_unique<Database>(Fig3().schema);
  w.pm = std::make_unique<PatternManager>(w.db.get());
  CreateOptions opts;
  opts.pattern = true;
  w.pattern = *w.db->CreateObject(Fig3().ids.action, "Template", opts);
  w.pattern_desc = *w.db->CreateSubObject(w.pattern, "Description");
  (void)w.db->SetValue(w.pattern_desc, Value::String("shared"));
  for (int i = 0; i < inheritors; ++i) {
    ObjectId real = *w.db->CreateObject(Fig3().ids.action,
                                        "Proc_" + std::to_string(i));
    (void)w.pm->Inherit(real, w.pattern);
    w.inheritors.push_back(real);
  }
  return w;
}

/// SEED pattern update: one write, all inheritors see it. Flat in N.
void BM_Fig5_PatternUpdate(benchmark::State& state) {
  PatternWorld w = BuildWorld(static_cast<int>(state.range(0)));
  int round = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(w.db->SetValue(
        w.pattern_desc, Value::String("v" + std::to_string(round++))));
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["inheritors"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_Fig5_PatternUpdate)->Arg(1)->Arg(10)->Arg(100)->Arg(1000);

/// Copy-based baseline: the shared value is duplicated per object, so a
/// "change the common deadline" update costs O(N) writes.
void BM_Fig5_CopyBasedUpdate(benchmark::State& state) {
  Database db(Fig3().schema);
  std::vector<ObjectId> descs;
  for (int i = 0; i < state.range(0); ++i) {
    ObjectId real =
        *db.CreateObject(Fig3().ids.action, "Proc_" + std::to_string(i));
    ObjectId d = *db.CreateSubObject(real, "Description");
    (void)db.SetValue(d, Value::String("shared"));
    descs.push_back(d);
  }
  int round = 0;
  for (auto _ : state) {
    Value v = Value::String("v" + std::to_string(round++));
    for (ObjectId d : descs) {
      benchmark::DoNotOptimize(db.SetValue(d, v));
    }
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["inheritors"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_Fig5_CopyBasedUpdate)->Arg(1)->Arg(10)->Arg(100)->Arg(1000);

/// Read-side cost of the overlay: effective value through the pattern vs.
/// a direct own sub-object read.
void BM_Fig5_EffectiveValueThroughPattern(benchmark::State& state) {
  PatternWorld w = BuildWorld(16);
  ObjectId probe = w.inheritors[7];
  for (auto _ : state) {
    auto v = w.pm->EffectiveValue(probe, "Description");
    benchmark::DoNotOptimize(v);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Fig5_EffectiveValueThroughPattern);

void BM_Fig5_OwnValueDirect(benchmark::State& state) {
  Database db(Fig3().schema);
  PatternManager pm(&db);
  ObjectId real = *db.CreateObject(Fig3().ids.action, "Proc");
  ObjectId d = *db.CreateSubObject(real, "Description");
  (void)db.SetValue(d, Value::String("own"));
  for (auto _ : state) {
    auto v = pm.EffectiveValue(real, "Description");
    benchmark::DoNotOptimize(v);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Fig5_OwnValueDirect);

/// Inheritance establishment (includes the deferred consistency check).
void BM_Fig5_InheritValidation(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    PatternWorld w = BuildWorld(0);
    std::vector<ObjectId> reals;
    for (int i = 0; i < state.range(0); ++i) {
      reals.push_back(*w.db->CreateObject(Fig3().ids.action,
                                          "R" + std::to_string(i)));
    }
    state.ResumeTiming();
    for (ObjectId r : reals) {
      benchmark::DoNotOptimize(w.pm->Inherit(r, w.pattern));
    }
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Fig5_InheritValidation)->Arg(10)->Arg(100);

/// Variant-family construction: common part + connector + N variants.
void BM_Fig5_VariantFamilyConstruction(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    Database db(Fig3().schema);
    PatternManager pm(&db);
    VariantFamily family("Configs", &pm);
    ObjectId common = *db.CreateObject(Fig3().ids.action, "Core");
    (void)family.AddCommonObject(common);
    (void)family.CreateConnector("PO", Fig3().ids.action,
                                 Fig3().ids.contained, 0, common);
    std::vector<std::vector<ObjectId>> variants;
    for (int v = 0; v < state.range(0); ++v) {
      std::vector<ObjectId> members;
      for (int m = 0; m < 4; ++m) {
        members.push_back(*db.CreateObject(
            Fig3().ids.action,
            "V" + std::to_string(v) + "_M" + std::to_string(m)));
      }
      variants.push_back(std::move(members));
    }
    state.ResumeTiming();
    for (int v = 0; v < state.range(0); ++v) {
      benchmark::DoNotOptimize(
          family.AddVariant("Var" + std::to_string(v), variants[v]));
    }
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Fig5_VariantFamilyConstruction)->Arg(2)->Arg(8)->Arg(32);

/// Shared-relationship view per variant member.
void BM_Fig5_SharedRelationships(benchmark::State& state) {
  Database db(Fig3().schema);
  PatternManager pm(&db);
  VariantFamily family("Configs", &pm);
  ObjectId common = *db.CreateObject(Fig3().ids.action, "Core");
  (void)family.AddCommonObject(common);
  (void)family.CreateConnector("PO", Fig3().ids.action, Fig3().ids.contained,
                               0, common);
  ObjectId member = *db.CreateObject(Fig3().ids.action, "M");
  (void)family.AddVariant("V", {member});
  for (auto _ : state) {
    auto shared = family.SharedRelationshipsOf(member);
    benchmark::DoNotOptimize(shared);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Fig5_SharedRelationships);

}  // namespace

BENCHMARK_MAIN();
