// The skewed 5-hop chain workload shared by bench_query's long-chain
// benchmarks and the CI plan-quality smoke gate
// (examples/plan_quality_smoke.cpp). Both must model the IDENTICAL
// world for the gate's 2x rows-visited guardrail to track what the
// bench reports, so the builder lives in one place.
//
// Shape: classes C0..C5 connected by 5 associations, hops 0/2/4 tiny
// and selective (10 edges), hops 1/3 dense (~n edges, bounded degree).
// The textual order drags dense intermediates through the whole chain;
// the DP can reduce BOTH sides of a dense hop via a bushy segment x
// segment join.

#ifndef SEED_BENCH_SKEWED_CHAIN_H_
#define SEED_BENCH_SKEWED_CHAIN_H_

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "core/database.h"
#include "query/planner.h"
#include "schema/schema_builder.h"

namespace seed::bench {

struct SkewedChainWorld {
  std::unique_ptr<core::Database> db;
  std::vector<query::QueryRelation> inputs;       // 6 binder extents
  std::vector<query::Planner::PipelineHop> hops;  // 5 hops
};

inline SkewedChainWorld BuildSkewedChain(int n) {
  schema::SchemaBuilder b("SkewedChain");
  std::vector<ClassId> cls;
  for (int i = 0; i < 6; ++i) {
    cls.push_back(b.AddIndependentClass("C" + std::to_string(i),
                                        schema::ValueType::kNone));
  }
  std::vector<AssociationId> assocs;
  for (int i = 0; i < 5; ++i) {
    assocs.push_back(b.AddAssociation(
        "H" + std::to_string(i),
        schema::Role{"l", cls[i], schema::Cardinality::Any()},
        schema::Role{"r", cls[i + 1], schema::Cardinality::Any()}));
  }
  SkewedChainWorld world{std::make_unique<core::Database>(*b.Build()),
                         {},
                         {}};
  int stripe = std::max(50, n / 100);
  std::vector<std::vector<ObjectId>> objs(6);
  for (int c = 0; c < 6; ++c) {
    for (int i = 0; i < stripe; ++i) {
      objs[c].push_back(*world.db->CreateObject(
          cls[c], "C" + std::to_string(c) + "_" + std::to_string(i)));
    }
  }
  // The degree cap keeps every (src, dst) pair unique, so relationship
  // creation never trips the duplicate rule.
  int degree = std::min(stripe, std::max(1, n / stripe));
  for (int h = 0; h < 5; ++h) {
    if (h % 2 == 1) {  // dense hop
      for (int i = 0; i < stripe; ++i) {
        for (int j = 0; j < degree; ++j) {
          (void)world.db->CreateRelationship(
              assocs[h], objs[h][i], objs[h + 1][(i + j * 13) % stripe]);
        }
      }
    } else {  // tiny selective hop
      for (int i = 0; i < 10; ++i) {
        (void)world.db->CreateRelationship(assocs[h], objs[h][i],
                                           objs[h + 1][i]);
      }
    }
  }
  for (int c = 0; c < 6; ++c) {
    query::QueryRelation rel;
    rel.attributes = {"b" + std::to_string(c)};
    for (ObjectId id : objs[c]) rel.tuples.push_back({id});
    world.inputs.push_back(std::move(rel));
  }
  for (int h = 0; h < 5; ++h) {
    world.hops.push_back({assocs[h], 0, cls[h], cls[h + 1]});
  }
  return world;
}

}  // namespace seed::bench

#endif  // SEED_BENCH_SKEWED_CHAIN_H_
