// Experiment F2 (paper Fig. 2): the cost of permanent consistency.
//
// Every SEED update runs the consistency rules derivable from the schema.
// This bench quantifies that price per rule family: relationship creation
// with membership + cardinality + duplicate checks, the ACYCLIC check as
// the containment tree grows, and attached-procedure dispatch.

#include <benchmark/benchmark.h>

#include "core/database.h"
#include "spades/spec_schema.h"

namespace {

using seed::core::Database;
using seed::core::UpdateEvent;
using seed::core::Value;
using seed::ObjectId;
using seed::Status;

seed::spades::Fig2Schema& Fig2() {
  static auto schema = *seed::spades::BuildFig2Schema();
  return schema;
}

/// Relationship creation: the paper's core consistency surface (class
/// membership, role maxima, duplicates). Participation lists of the shared
/// action grow with range(0).
void BM_Fig2_CreateRelationshipChecked(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    Database db(Fig2().schema);
    ObjectId action = *db.CreateObject(Fig2().ids.action, "Hub");
    std::vector<ObjectId> data;
    for (int i = 0; i < state.range(0); ++i) {
      data.push_back(
          *db.CreateObject(Fig2().ids.data, "D" + std::to_string(i)));
    }
    state.ResumeTiming();
    for (ObjectId d : data) {
      benchmark::DoNotOptimize(
          db.CreateRelationship(Fig2().ids.read, d, action));
    }
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Fig2_CreateRelationshipChecked)->Arg(10)->Arg(100)->Arg(1000);

/// ACYCLIC enforcement while growing a containment tree of `n` actions
/// (every insert runs a reachability check).
void BM_Fig2_AcyclicTreeGrowth(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    Database db(Fig2().schema);
    std::vector<ObjectId> actions;
    for (int i = 0; i < state.range(0); ++i) {
      actions.push_back(
          *db.CreateObject(Fig2().ids.action, "A" + std::to_string(i)));
    }
    state.ResumeTiming();
    for (int i = 1; i < state.range(0); ++i) {
      benchmark::DoNotOptimize(db.CreateRelationship(
          Fig2().ids.contained, actions[i], actions[(i - 1) / 2]));
    }
  }
  state.SetItemsProcessed(state.iterations() * (state.range(0) - 1));
}
BENCHMARK(BM_Fig2_AcyclicTreeGrowth)->Arg(32)->Arg(256)->Arg(1024);

/// The ACYCLIC rejection path: an insert that would close a cycle at the
/// far end of a chain of length n (worst-case reachability walk).
void BM_Fig2_AcyclicRejection(benchmark::State& state) {
  Database db(Fig2().schema);
  std::vector<ObjectId> actions;
  for (int i = 0; i < state.range(0); ++i) {
    actions.push_back(
        *db.CreateObject(Fig2().ids.action, "A" + std::to_string(i)));
  }
  for (int i = 1; i < state.range(0); ++i) {
    (void)db.CreateRelationship(Fig2().ids.contained, actions[i],
                                actions[i - 1]);
  }
  for (auto _ : state) {
    auto rejected = db.CreateRelationship(Fig2().ids.contained, actions[0],
                                          actions.back());
    benchmark::DoNotOptimize(rejected);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Fig2_AcyclicRejection)->Arg(32)->Arg(256)->Arg(1024);

/// SetValue with and without an attached procedure, isolating hook cost.
void BM_Fig2_SetValuePlain(benchmark::State& state) {
  Database db(Fig2().schema);
  ObjectId alarms = *db.CreateObject(Fig2().ids.data, "Alarms");
  ObjectId text = *db.CreateSubObject(alarms, "Text");
  ObjectId selector = *db.CreateSubObject(text, "Selector");
  int i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        db.SetValue(selector, Value::String("v" + std::to_string(i++))));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Fig2_SetValuePlain);

void BM_Fig2_SetValueWithAttachedProcedure(benchmark::State& state) {
  Database db(Fig2().schema);
  db.AttachProcedure(Fig2().ids.selector, [](const UpdateEvent& e) {
    auto obj = e.db->GetObject(e.object);
    if (obj.ok() && (*obj)->value.is_string() &&
        (*obj)->value.as_string().size() > 1000) {
      return Status::InvalidArgument("too long");
    }
    return Status::OK();
  });
  ObjectId alarms = *db.CreateObject(Fig2().ids.data, "Alarms");
  ObjectId text = *db.CreateSubObject(alarms, "Text");
  ObjectId selector = *db.CreateSubObject(text, "Selector");
  int i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        db.SetValue(selector, Value::String("v" + std::to_string(i++))));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Fig2_SetValueWithAttachedProcedure);

/// Full-audit cost as the database grows (used by migration and check-in).
void BM_Fig2_FullAudit(benchmark::State& state) {
  Database db(Fig2().schema);
  ObjectId hub = *db.CreateObject(Fig2().ids.action, "Hub");
  for (int i = 0; i < state.range(0); ++i) {
    ObjectId d = *db.CreateObject(Fig2().ids.data, "D" + std::to_string(i));
    (void)db.CreateRelationship(Fig2().ids.read, d, hub);
  }
  for (auto _ : state) {
    auto report = db.AuditConsistency();
    benchmark::DoNotOptimize(report);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Fig2_FullAudit)->Arg(100)->Arg(1000);

}  // namespace

BENCHMARK_MAIN();
