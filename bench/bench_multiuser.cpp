// Experiment C6: the two-level multi-user design (paper, open problems).
//
// Measures checkout/checkin round-trip cost vs. subtree size, the check-in
// audit (the single-transaction guarantee), and the lock-conflict path.

#include <benchmark/benchmark.h>

#include "multiuser/client.h"
#include "multiuser/server.h"
#include "spades/spec_schema.h"

namespace {

using seed::core::Value;
using seed::multiuser::ClientSession;
using seed::multiuser::Server;
using seed::ObjectId;

seed::spades::Fig3Schema& Fig3() {
  static auto schema = *seed::spades::BuildFig3Schema();
  return schema;
}

/// Server with `n` actions, each carrying a description.
std::unique_ptr<Server> BuildServer(int n) {
  auto server = std::make_unique<Server>(Fig3().schema);
  for (int i = 0; i < n; ++i) {
    ObjectId a = *server->master()->CreateObject(
        Fig3().ids.action, "Action_" + std::to_string(i));
    ObjectId d = *server->master()->CreateSubObject(a, "Description");
    (void)server->master()->SetValue(
        d, Value::String("step " + std::to_string(i)));
  }
  server->master()->ClearChangeTracking();
  return server;
}

/// Full edit cycle: checkout one subtree, modify, check back in.
void BM_Multiuser_EditCycle(benchmark::State& state) {
  auto server = BuildServer(static_cast<int>(state.range(0)));
  int round = 0;
  for (auto _ : state) {
    auto session =
        std::move(ClientSession::Open(server.get(), "alice")).value();
    std::string target = "Action_" + std::to_string(round % state.range(0));
    if (!session->CheckoutByName({target}).ok()) {
      state.SkipWithError("checkout failed");
    }
    ObjectId local = *session->local()->FindObjectByName(target);
    ObjectId d = session->local()->SubObjects(local, "Description")[0];
    (void)session->local()->SetValue(
        d, Value::String("edited " + std::to_string(round)));
    if (!session->Checkin().ok()) state.SkipWithError("checkin failed");
    ++round;
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["master_objects"] =
      static_cast<double>(server->master()->num_live_objects());
}
BENCHMARK(BM_Multiuser_EditCycle)->Arg(16)->Arg(128)->Arg(512);

/// Checkout alone, as the subtree grows.
void BM_Multiuser_CheckoutSubtree(benchmark::State& state) {
  auto server = std::make_unique<Server>(Fig3().schema);
  ObjectId root =
      *server->master()->CreateObject(Fig3().ids.data, "BigData");
  for (int i = 0; i < state.range(0) && i < 16; ++i) {
    ObjectId text = *server->master()->CreateSubObject(root, "Text");
    ObjectId body = *server->master()->CreateSubObject(text, "Body");
    for (int j = 0; j < state.range(0) / 16; ++j) {
      if (server->master()->SubObjects(body, "Keywords").size() >= 8) break;
      (void)server->master()->CreateSubObject(body, "Keywords");
    }
  }
  server->master()->ClearChangeTracking();
  for (auto _ : state) {
    auto session =
        std::move(ClientSession::Open(server.get(), "alice")).value();
    benchmark::DoNotOptimize(session->Checkout({root}));
    (void)session->Abandon();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Multiuser_CheckoutSubtree)->Arg(16)->Arg(64);

/// Lock conflict path: the second client's checkout must fail fast.
void BM_Multiuser_LockConflict(benchmark::State& state) {
  auto server = BuildServer(4);
  auto alice = std::move(ClientSession::Open(server.get(), "alice")).value();
  (void)alice->CheckoutByName({"Action_0"});
  auto bob = std::move(ClientSession::Open(server.get(), "bob")).value();
  ObjectId target = *server->master()->FindObjectByName("Action_0");
  for (auto _ : state) {
    benchmark::DoNotOptimize(bob->Checkout({target}));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Multiuser_LockConflict);

/// Check-in cost is dominated by the master audit: show its growth with
/// master size (the honest cost of the all-or-nothing transaction).
void BM_Multiuser_CheckinAudit(benchmark::State& state) {
  auto server = BuildServer(static_cast<int>(state.range(0)));
  int round = 0;
  for (auto _ : state) {
    auto session = std::move(ClientSession::Open(server.get(), "w")).value();
    auto fresh = session->local()->CreateObject(
        Fig3().ids.action, "Fresh_" + std::to_string(round++));
    benchmark::DoNotOptimize(fresh);
    if (!session->Checkin().ok()) state.SkipWithError("checkin failed");
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["master_objects"] =
      static_cast<double>(server->master()->num_live_objects());
}
BENCHMARK(BM_Multiuser_CheckinAudit)->Arg(64)->Arg(256)->Arg(1024);

}  // namespace

BENCHMARK_MAIN();
