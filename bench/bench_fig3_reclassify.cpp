// Experiment F3 (paper Fig. 3): vague-to-precise refinement.
//
// Measures re-classification of objects down (and up) the generalization
// hierarchy and specialization of Access relationships into Read/Write —
// the operations that make SEED's vague-information concept usable — plus
// the full paper narrative as one macro operation.

#include <benchmark/benchmark.h>

#include "core/database.h"
#include "spades/spec_schema.h"

namespace {

using seed::core::Database;
using seed::core::Value;
using seed::ObjectId;
using seed::RelationshipId;

seed::spades::Fig3Schema& Fig3() {
  static auto schema = *seed::spades::BuildFig3Schema();
  return schema;
}

/// Thing -> Data -> OutputData -> Data -> Thing round trip per object.
void BM_Fig3_ReclassifyRoundTrip(benchmark::State& state) {
  Database db(Fig3().schema);
  std::vector<ObjectId> things;
  for (int i = 0; i < state.range(0); ++i) {
    things.push_back(
        *db.CreateObject(Fig3().ids.thing, "T" + std::to_string(i)));
  }
  for (auto _ : state) {
    for (ObjectId t : things) {
      benchmark::DoNotOptimize(db.Reclassify(t, Fig3().ids.data));
      benchmark::DoNotOptimize(db.Reclassify(t, Fig3().ids.output_data));
      benchmark::DoNotOptimize(db.Reclassify(t, Fig3().ids.data));
      benchmark::DoNotOptimize(db.Reclassify(t, Fig3().ids.thing));
    }
  }
  state.SetItemsProcessed(state.iterations() * state.range(0) * 4);
}
BENCHMARK(BM_Fig3_ReclassifyRoundTrip)->Arg(10)->Arg(100)->Arg(1000);

/// Re-classification cost when the object carries relationships that must
/// be re-validated (scales with the object's relationship count).
void BM_Fig3_ReclassifyWithRelationships(benchmark::State& state) {
  Database db(Fig3().schema);
  ObjectId data = *db.CreateObject(Fig3().ids.data, "Hot");
  for (int i = 0; i < state.range(0); ++i) {
    ObjectId a =
        *db.CreateObject(Fig3().ids.action, "A" + std::to_string(i));
    (void)db.CreateRelationship(Fig3().ids.access, data, a);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(db.Reclassify(data, Fig3().ids.input_data));
    benchmark::DoNotOptimize(db.Reclassify(data, Fig3().ids.data));
  }
  state.SetItemsProcessed(state.iterations() * 2);
  state.counters["relationships"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_Fig3_ReclassifyWithRelationships)->Arg(1)->Arg(16)->Arg(128);

/// Specializing Access into Write (relationship re-classification).
void BM_Fig3_SpecializeFlow(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    Database db(Fig3().schema);
    ObjectId out = *db.CreateObject(Fig3().ids.output_data, "Out");
    std::vector<RelationshipId> flows;
    for (int i = 0; i < state.range(0); ++i) {
      ObjectId a =
          *db.CreateObject(Fig3().ids.action, "A" + std::to_string(i));
      flows.push_back(*db.CreateRelationship(Fig3().ids.access, out, a));
    }
    state.ResumeTiming();
    for (RelationshipId f : flows) {
      benchmark::DoNotOptimize(
          db.ReclassifyRelationship(f, Fig3().ids.write));
    }
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Fig3_SpecializeFlow)->Arg(10)->Arg(100)->Arg(1000);

/// The complete Fig. 3 narrative as one unit of work: vague thing ->
/// data -> access -> output -> write -> attributes.
void BM_Fig3_PaperNarrative(benchmark::State& state) {
  int round = 0;
  Database db(Fig3().schema);
  ObjectId sensor = *db.CreateObject(Fig3().ids.action, "Sensor");
  for (auto _ : state) {
    std::string name = "Alarms_" + std::to_string(round++);
    ObjectId alarms = *db.CreateObject(Fig3().ids.thing, name);
    (void)db.Reclassify(alarms, Fig3().ids.data);
    RelationshipId access =
        *db.CreateRelationship(Fig3().ids.access, alarms, sensor);
    (void)db.Reclassify(alarms, Fig3().ids.output_data);
    (void)db.ReclassifyRelationship(access, Fig3().ids.write);
    ObjectId n = *db.CreateSubObject(access, "NumberOfWrites");
    (void)db.SetValue(n, Value::Int(2));
    ObjectId eh = *db.CreateSubObject(access, "ErrorHandling");
    (void)db.SetValue(eh, Value::Enum("repeat"));
    benchmark::DoNotOptimize(access);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Fig3_PaperNarrative);

/// Baseline: the same end state entered directly (already precise), to
/// expose the overhead vague entry + refinement adds over precise entry.
void BM_Fig3_DirectPreciseEntry(benchmark::State& state) {
  int round = 0;
  Database db(Fig3().schema);
  ObjectId sensor = *db.CreateObject(Fig3().ids.action, "Sensor");
  for (auto _ : state) {
    std::string name = "Alarms_" + std::to_string(round++);
    ObjectId alarms = *db.CreateObject(Fig3().ids.output_data, name);
    RelationshipId write =
        *db.CreateRelationship(Fig3().ids.write, alarms, sensor);
    ObjectId n = *db.CreateSubObject(write, "NumberOfWrites");
    (void)db.SetValue(n, Value::Int(2));
    ObjectId eh = *db.CreateSubObject(write, "ErrorHandling");
    (void)db.SetValue(eh, Value::Enum("repeat"));
    benchmark::DoNotOptimize(write);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Fig3_DirectPreciseEntry);

}  // namespace

BENCHMARK_MAIN();
