// Experiment C1: "SPADES has become considerably slower, but much more
// flexible."
//
// The paper's only performance observation. We run the identical
// specification session through the SEED-backed tool and through the
// hand-rolled pre-SEED baseline; the ratio of the two is the "considerably
// slower" factor the paper reports qualitatively. The flexibility side is
// structural (consistency checks, vagueness, completeness) and is covered
// by the test suite.

#include <benchmark/benchmark.h>

#include "spades/spec_tool.h"
#include "spades/workload.h"

namespace {

using seed::spades::DirectSpecTool;
using seed::spades::SeedSpecTool;
using seed::spades::SessionParams;

SessionParams ParamsFor(int scale) {
  SessionParams p;
  p.num_actions = static_cast<size_t>(scale);
  p.num_data = static_cast<size_t>(scale);
  p.flows_per_action = 3;
  p.num_queries = static_cast<size_t>(scale) * 2;
  return p;
}

void BM_Spades_OnSeed(benchmark::State& state) {
  SessionParams params = ParamsFor(static_cast<int>(state.range(0)));
  std::uint64_t mutations = 0;
  for (auto _ : state) {
    auto tool = std::move(SeedSpecTool::Create()).value();
    auto stats = seed::spades::RunSession(tool.get(), params);
    if (!stats.ok()) state.SkipWithError(stats.status().ToString().c_str());
    mutations = stats->mutations + stats->queries;
    benchmark::DoNotOptimize(stats);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(mutations));
  state.counters["session_ops"] = static_cast<double>(mutations);
}
BENCHMARK(BM_Spades_OnSeed)->Arg(25)->Arg(50)->Arg(100);

void BM_Spades_Direct(benchmark::State& state) {
  SessionParams params = ParamsFor(static_cast<int>(state.range(0)));
  std::uint64_t mutations = 0;
  for (auto _ : state) {
    DirectSpecTool tool;
    auto stats = seed::spades::RunSession(&tool, params);
    if (!stats.ok()) state.SkipWithError(stats.status().ToString().c_str());
    mutations = stats->mutations + stats->queries;
    benchmark::DoNotOptimize(stats);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(mutations));
  state.counters["session_ops"] = static_cast<double>(mutations);
}
BENCHMARK(BM_Spades_Direct)->Arg(25)->Arg(50)->Arg(100);

/// Query-only comparison on a prebuilt session (retrieval overhead).
void BM_Spades_QueriesOnSeed(benchmark::State& state) {
  auto tool = std::move(SeedSpecTool::Create()).value();
  SessionParams params = ParamsFor(50);
  params.num_queries = 0;
  if (!seed::spades::RunSession(tool.get(), params).ok()) {
    state.SkipWithError("session failed");
  }
  int i = 0;
  for (auto _ : state) {
    auto r = tool->ActionsAccessing("Data_" + std::to_string(i++ % 50));
    benchmark::DoNotOptimize(r);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Spades_QueriesOnSeed);

void BM_Spades_QueriesDirect(benchmark::State& state) {
  DirectSpecTool tool;
  SessionParams params = ParamsFor(50);
  params.num_queries = 0;
  if (!seed::spades::RunSession(&tool, params).ok()) {
    state.SkipWithError("session failed");
  }
  int i = 0;
  for (auto _ : state) {
    auto r = tool.ActionsAccessing("Data_" + std::to_string(i++ % 50));
    benchmark::DoNotOptimize(r);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Spades_QueriesDirect);

}  // namespace

BENCHMARK_MAIN();
