// Extension benchmark: the ER algebra (Parent & Spaccapietra-style),
// measuring selection, relationship join and pipeline queries over a
// generated specification — plus the attribute-index subsystem, comparing
// planner-driven index probes against the full extent-scan path on
// selective equality and range predicates.

#include <benchmark/benchmark.h>

#include <cstdlib>

#include "query/algebra.h"
#include "query/planner.h"
#include "query/predicate.h"
#include "schema/schema_builder.h"
#include "spades/spec_schema.h"

namespace {

using seed::core::Database;
using seed::ObjectId;
using seed::query::Algebra;
using seed::query::Planner;
using seed::query::Predicate;

seed::spades::Fig3Schema& Fig3() {
  static auto schema = *seed::spades::BuildFig3Schema();
  return schema;
}

std::unique_ptr<Database> BuildWorld(int n) {
  auto db = std::make_unique<Database>(Fig3().schema);
  std::vector<ObjectId> data, actions;
  for (int i = 0; i < n; ++i) {
    data.push_back(*db->CreateObject(Fig3().ids.input_data,
                                     "Data_" + std::to_string(i)));
    actions.push_back(*db->CreateObject(Fig3().ids.action,
                                        "Action_" + std::to_string(i)));
  }
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < 4; ++j) {
      (void)db->CreateRelationship(Fig3().ids.read, data[(i + j * 7) % n],
                                   actions[i]);
    }
  }
  return db;
}

void BM_Query_ClassExtent(benchmark::State& state) {
  auto db = BuildWorld(static_cast<int>(state.range(0)));
  Algebra algebra(db.get());
  for (auto _ : state) {
    auto r = algebra.ClassExtent(Fig3().ids.thing, "t");
    benchmark::DoNotOptimize(r);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0) * 2);
}
BENCHMARK(BM_Query_ClassExtent)->Arg(100)->Arg(1000);

void BM_Query_Select(benchmark::State& state) {
  auto db = BuildWorld(static_cast<int>(state.range(0)));
  Algebra algebra(db.get());
  auto extent = algebra.ClassExtent(Fig3().ids.data, "d");
  auto pred = Predicate::NameContains("7");
  for (auto _ : state) {
    auto r = algebra.Select(extent, "d", pred);
    benchmark::DoNotOptimize(r);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Query_Select)->Arg(100)->Arg(1000);

void BM_Query_RelationshipJoin(benchmark::State& state) {
  auto db = BuildWorld(static_cast<int>(state.range(0)));
  Algebra algebra(db.get());
  auto data = algebra.ClassExtent(Fig3().ids.data, "d");
  auto actions = algebra.ClassExtent(Fig3().ids.action, "a");
  for (auto _ : state) {
    auto r = algebra.RelationshipJoin(data, "d", Fig3().ids.access, actions,
                                      "a");
    benchmark::DoNotOptimize(r);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0) * 4);
}
BENCHMARK(BM_Query_RelationshipJoin)->Arg(100)->Arg(1000);

void BM_Query_Pipeline(benchmark::State& state) {
  auto db = BuildWorld(static_cast<int>(state.range(0)));
  Algebra algebra(db.get());
  for (auto _ : state) {
    auto data = algebra.ClassExtent(Fig3().ids.data, "d");
    auto actions = algebra.ClassExtent(Fig3().ids.action, "a");
    auto joined = *algebra.RelationshipJoin(data, "d", Fig3().ids.access,
                                            actions, "a");
    auto filtered =
        *algebra.Select(joined, "d", Predicate::NameContains("1"));
    auto result = *algebra.Project(filtered, {"a"});
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Query_Pipeline)->Arg(100)->Arg(1000);

void BM_Query_CartesianProduct(benchmark::State& state) {
  auto db = BuildWorld(static_cast<int>(state.range(0)));
  Algebra algebra(db.get());
  auto data = algebra.ClassExtent(Fig3().ids.data, "d");
  auto actions = algebra.ClassExtent(Fig3().ids.action, "a");
  for (auto _ : state) {
    auto r = algebra.CartesianProduct(data, actions);
    benchmark::DoNotOptimize(r);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0) *
                          state.range(0));
}
BENCHMARK(BM_Query_CartesianProduct)->Arg(32)->Arg(100);

// --- Index scan vs. full scan ------------------------------------------------

struct ReadingWorld {
  std::unique_ptr<Database> db;
  seed::ClassId reading;
};

/// `n` int-valued readings (values 0..999, so equality selects ~n/1000);
/// every 10th object stays vague (undefined) to keep the paper's
/// incomplete-information semantics in play on both paths.
ReadingWorld BuildReadings(int n, bool with_index) {
  seed::schema::SchemaBuilder b("Telemetry");
  seed::ClassId reading =
      b.AddIndependentClass("Reading", seed::schema::ValueType::kInt);
  ReadingWorld world{std::make_unique<Database>(*b.Build()), reading};
  for (int i = 0; i < n; ++i) {
    auto id = *world.db->CreateObject(reading, "R_" + std::to_string(i));
    if (i % 10 != 9) {
      (void)world.db->SetValue(id, seed::core::Value::Int(i % 1000));
    }
  }
  if (with_index) (void)world.db->CreateAttributeIndex({reading, ""});
  return world;
}

/// Both paths must return identical tuples; run once per benchmark setup.
void CheckPathsAgree(Database* db, seed::ClassId reading,
                     const Predicate& p) {
  Planner planner(db);
  Algebra algebra(db);
  auto extent = algebra.ClassExtent(reading, "r");
  auto scanned = *algebra.Select(extent, "r", p);
  auto planned = *planner.SelectFromClass(reading, "r", p);
  if (scanned.tuples != planned.tuples) {
    fprintf(stderr, "index/scan result mismatch: %zu vs %zu tuples\n",
            scanned.size(), planned.size());
    abort();
  }
}

void BM_Query_SelectEqualityScan(benchmark::State& state) {
  auto world = BuildReadings(static_cast<int>(state.range(0)), false);
  Planner planner(world.db.get());
  auto pred = Predicate::ValueEquals(seed::core::Value::Int(137));
  for (auto _ : state) {
    auto r = planner.SelectFromClass(world.reading, "r", pred);
    benchmark::DoNotOptimize(r);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Query_SelectEqualityScan)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_Query_SelectEqualityIndexed(benchmark::State& state) {
  auto world = BuildReadings(static_cast<int>(state.range(0)), true);
  CheckPathsAgree(world.db.get(), world.reading,
                  Predicate::ValueEquals(seed::core::Value::Int(137)));
  Planner planner(world.db.get());
  auto pred = Predicate::ValueEquals(seed::core::Value::Int(137));
  for (auto _ : state) {
    auto r = planner.SelectFromClass(world.reading, "r", pred);
    benchmark::DoNotOptimize(r);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Query_SelectEqualityIndexed)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_Query_SelectRangeScan(benchmark::State& state) {
  auto world = BuildReadings(static_cast<int>(state.range(0)), false);
  Planner planner(world.db.get());
  auto pred = Predicate::IntGreater(990);  // ~1% of defined values
  for (auto _ : state) {
    auto r = planner.SelectFromClass(world.reading, "r", pred);
    benchmark::DoNotOptimize(r);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Query_SelectRangeScan)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_Query_SelectRangeIndexed(benchmark::State& state) {
  auto world = BuildReadings(static_cast<int>(state.range(0)), true);
  CheckPathsAgree(world.db.get(), world.reading, Predicate::IntGreater(990));
  Planner planner(world.db.get());
  auto pred = Predicate::IntGreater(990);
  for (auto _ : state) {
    auto r = planner.SelectFromClass(world.reading, "r", pred);
    benchmark::DoNotOptimize(r);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Query_SelectRangeIndexed)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_Query_IndexMaintenanceSetValue(benchmark::State& state) {
  auto world = BuildReadings(static_cast<int>(state.range(0)), true);
  auto ids = world.db->ObjectsOfClass(world.reading);
  size_t i = 0;
  for (auto _ : state) {
    ObjectId id = ids[i++ % ids.size()];
    (void)world.db->SetValue(
        id, seed::core::Value::Int(static_cast<int>(i) % 1000));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Query_IndexMaintenanceSetValue)->Arg(10000);

}  // namespace

BENCHMARK_MAIN();
