// Extension benchmark: the ER algebra (Parent & Spaccapietra-style),
// measuring selection, relationship join and pipeline queries over a
// generated specification — plus the attribute-index subsystem, comparing
// planner-driven index probes against the full extent-scan path on
// selective equality and range predicates, the multi-index intersection
// of an AND of two selective predicates against the single-index-plus-
// residual plan, and relationship-attribute filtering through a
// relationship-side index against the RelationshipsOfAssociation scan.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "query/algebra.h"
#include "query/planner.h"
#include "query/predicate.h"
#include "schema/schema_builder.h"
#include "spades/spec_schema.h"

#include "skewed_chain.h"

namespace {

using seed::core::Database;
using seed::ObjectId;
using seed::query::Algebra;
using seed::query::Planner;
using seed::query::Predicate;

seed::spades::Fig3Schema& Fig3() {
  static auto schema = *seed::spades::BuildFig3Schema();
  return schema;
}

std::unique_ptr<Database> BuildWorld(int n) {
  auto db = std::make_unique<Database>(Fig3().schema);
  std::vector<ObjectId> data, actions;
  for (int i = 0; i < n; ++i) {
    data.push_back(*db->CreateObject(Fig3().ids.input_data,
                                     "Data_" + std::to_string(i)));
    actions.push_back(*db->CreateObject(Fig3().ids.action,
                                        "Action_" + std::to_string(i)));
  }
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < 4; ++j) {
      (void)db->CreateRelationship(Fig3().ids.read, data[(i + j * 7) % n],
                                   actions[i]);
    }
  }
  return db;
}

void BM_Query_ClassExtent(benchmark::State& state) {
  auto db = BuildWorld(static_cast<int>(state.range(0)));
  Algebra algebra(db.get());
  for (auto _ : state) {
    auto r = algebra.ClassExtent(Fig3().ids.thing, "t");
    benchmark::DoNotOptimize(r);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0) * 2);
}
BENCHMARK(BM_Query_ClassExtent)->Arg(100)->Arg(1000);

void BM_Query_Select(benchmark::State& state) {
  auto db = BuildWorld(static_cast<int>(state.range(0)));
  Algebra algebra(db.get());
  auto extent = algebra.ClassExtent(Fig3().ids.data, "d");
  auto pred = Predicate::NameContains("7");
  for (auto _ : state) {
    auto r = algebra.Select(extent, "d", pred);
    benchmark::DoNotOptimize(r);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Query_Select)->Arg(100)->Arg(1000);

void BM_Query_RelationshipJoin(benchmark::State& state) {
  auto db = BuildWorld(static_cast<int>(state.range(0)));
  Algebra algebra(db.get());
  auto data = algebra.ClassExtent(Fig3().ids.data, "d");
  auto actions = algebra.ClassExtent(Fig3().ids.action, "a");
  for (auto _ : state) {
    auto r = algebra.RelationshipJoin(data, "d", Fig3().ids.access, actions,
                                      "a");
    benchmark::DoNotOptimize(r);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0) * 4);
}
BENCHMARK(BM_Query_RelationshipJoin)->Arg(100)->Arg(1000);

void BM_Query_Pipeline(benchmark::State& state) {
  auto db = BuildWorld(static_cast<int>(state.range(0)));
  Algebra algebra(db.get());
  for (auto _ : state) {
    auto data = algebra.ClassExtent(Fig3().ids.data, "d");
    auto actions = algebra.ClassExtent(Fig3().ids.action, "a");
    auto joined = *algebra.RelationshipJoin(data, "d", Fig3().ids.access,
                                            actions, "a");
    auto filtered =
        *algebra.Select(joined, "d", Predicate::NameContains("1"));
    auto result = *algebra.Project(filtered, {"a"});
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Query_Pipeline)->Arg(100)->Arg(1000);

void BM_Query_CartesianProduct(benchmark::State& state) {
  auto db = BuildWorld(static_cast<int>(state.range(0)));
  Algebra algebra(db.get());
  auto data = algebra.ClassExtent(Fig3().ids.data, "d");
  auto actions = algebra.ClassExtent(Fig3().ids.action, "a");
  for (auto _ : state) {
    auto r = algebra.CartesianProduct(data, actions);
    benchmark::DoNotOptimize(r);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0) *
                          state.range(0));
}
BENCHMARK(BM_Query_CartesianProduct)->Arg(32)->Arg(100);

// --- Index scan vs. full scan ------------------------------------------------

struct ReadingWorld {
  std::unique_ptr<Database> db;
  seed::ClassId reading;
};

/// `n` int-valued readings (values 0..999, so equality selects ~n/1000);
/// every 10th object stays vague (undefined) to keep the paper's
/// incomplete-information semantics in play on both paths.
ReadingWorld BuildReadings(int n, bool with_index) {
  seed::schema::SchemaBuilder b("Telemetry");
  seed::ClassId reading =
      b.AddIndependentClass("Reading", seed::schema::ValueType::kInt);
  ReadingWorld world{std::make_unique<Database>(*b.Build()), reading};
  for (int i = 0; i < n; ++i) {
    auto id = *world.db->CreateObject(reading, "R_" + std::to_string(i));
    if (i % 10 != 9) {
      (void)world.db->SetValue(id, seed::core::Value::Int(i % 1000));
    }
  }
  if (with_index) (void)world.db->CreateAttributeIndex({reading, ""});
  return world;
}

/// Both paths must return identical tuples; run once per benchmark setup.
void CheckPathsAgree(Database* db, seed::ClassId reading,
                     const Predicate& p) {
  Planner planner(db);
  Algebra algebra(db);
  auto extent = algebra.ClassExtent(reading, "r");
  auto scanned = *algebra.Select(extent, "r", p);
  auto planned = *planner.SelectFromClass(reading, "r", p);
  if (scanned.tuples != planned.tuples) {
    fprintf(stderr, "index/scan result mismatch: %zu vs %zu tuples\n",
            scanned.size(), planned.size());
    abort();
  }
}

void BM_Query_SelectEqualityScan(benchmark::State& state) {
  auto world = BuildReadings(static_cast<int>(state.range(0)), false);
  Planner planner(world.db.get());
  auto pred = Predicate::ValueEquals(seed::core::Value::Int(137));
  for (auto _ : state) {
    auto r = planner.SelectFromClass(world.reading, "r", pred);
    benchmark::DoNotOptimize(r);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Query_SelectEqualityScan)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_Query_SelectEqualityIndexed(benchmark::State& state) {
  auto world = BuildReadings(static_cast<int>(state.range(0)), true);
  CheckPathsAgree(world.db.get(), world.reading,
                  Predicate::ValueEquals(seed::core::Value::Int(137)));
  Planner planner(world.db.get());
  auto pred = Predicate::ValueEquals(seed::core::Value::Int(137));
  for (auto _ : state) {
    auto r = planner.SelectFromClass(world.reading, "r", pred);
    benchmark::DoNotOptimize(r);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Query_SelectEqualityIndexed)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_Query_SelectRangeScan(benchmark::State& state) {
  auto world = BuildReadings(static_cast<int>(state.range(0)), false);
  Planner planner(world.db.get());
  auto pred = Predicate::IntGreater(990);  // ~1% of defined values
  for (auto _ : state) {
    auto r = planner.SelectFromClass(world.reading, "r", pred);
    benchmark::DoNotOptimize(r);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Query_SelectRangeScan)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_Query_SelectRangeIndexed(benchmark::State& state) {
  auto world = BuildReadings(static_cast<int>(state.range(0)), true);
  CheckPathsAgree(world.db.get(), world.reading, Predicate::IntGreater(990));
  Planner planner(world.db.get());
  auto pred = Predicate::IntGreater(990);
  for (auto _ : state) {
    auto r = planner.SelectFromClass(world.reading, "r", pred);
    benchmark::DoNotOptimize(r);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Query_SelectRangeIndexed)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_Query_IndexMaintenanceSetValue(benchmark::State& state) {
  auto world = BuildReadings(static_cast<int>(state.range(0)), true);
  auto ids = world.db->ObjectsOfClass(world.reading);
  size_t i = 0;
  for (auto _ : state) {
    ObjectId id = ids[i++ % ids.size()];
    (void)world.db->SetValue(
        id, seed::core::Value::Int(static_cast<int>(i) % 1000));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Query_IndexMaintenanceSetValue)->Arg(10000);

// --- AND of two selective predicates: intersection vs. single index ----------

struct ShardedWorld {
  std::unique_ptr<Database> db;
  seed::ClassId reading;
};

/// `n` readings with two independently selective attributes: the own
/// value (i % 211) and a Shard sub-object (i % 101). The conjunction of
/// one equality on each selects ~n / (211*101) rows.
ShardedWorld BuildSharded(int n, bool shard_index) {
  seed::schema::SchemaBuilder b("Telemetry2");
  seed::ClassId reading =
      b.AddIndependentClass("Reading", seed::schema::ValueType::kInt);
  b.AddDependentClass(reading, "Shard", seed::schema::Cardinality(0, 1),
                      seed::schema::ValueType::kInt);
  ShardedWorld world{std::make_unique<Database>(*b.Build()), reading};
  for (int i = 0; i < n; ++i) {
    auto id = *world.db->CreateObject(reading, "R_" + std::to_string(i));
    (void)world.db->SetValue(id, seed::core::Value::Int(i % 211));
    auto shard = *world.db->CreateSubObject(id, "Shard");
    (void)world.db->SetValue(shard, seed::core::Value::Int(i % 101));
  }
  (void)world.db->CreateAttributeIndex({reading, ""});
  if (shard_index) (void)world.db->CreateAttributeIndex({reading, "Shard"});
  return world;
}

Predicate ShardedConjunction() {
  return Predicate::ValueEquals(seed::core::Value::Int(137))
      .And(Predicate::OnSubObject(
          "Shard", Predicate::ValueEquals(seed::core::Value::Int(37))));
}

/// Only the own-value index exists: the planner probes it and residual-
/// evaluates every reading with value 137.
void BM_Query_AndSingleIndexResidual(benchmark::State& state) {
  auto world = BuildSharded(static_cast<int>(state.range(0)), false);
  Planner planner(world.db.get());
  auto pred = ShardedConjunction();
  if (!planner.PlanSelect(world.reading, pred).uses_index()) abort();
  for (auto _ : state) {
    auto r = planner.SelectIds(world.reading, pred);
    benchmark::DoNotOptimize(r);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Query_AndSingleIndexResidual)->Arg(10000)->Arg(100000);

/// Both indexes exist: the cost model picks the posting-list intersection
/// and the residual only sees the handful of surviving candidates.
void BM_Query_AndMultiIndexIntersection(benchmark::State& state) {
  auto world = BuildSharded(static_cast<int>(state.range(0)), true);
  Planner planner(world.db.get());
  auto pred = ShardedConjunction();
  auto plan = planner.PlanSelect(world.reading, pred);
  if (plan.kind != Planner::Plan::Kind::kIndexIntersect) abort();
  // Identity with the single-index world's results is implied by the
  // planner/scan identity; check against the scan once.
  {
    std::vector<ObjectId> scanned;
    for (ObjectId id : world.db->ObjectsOfClass(world.reading)) {
      if (pred.Eval(*world.db, id)) scanned.push_back(id);
    }
    if (planner.SelectIds(world.reading, pred) != scanned) abort();
  }
  for (auto _ : state) {
    auto r = planner.SelectIds(world.reading, pred);
    benchmark::DoNotOptimize(r);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Query_AndMultiIndexIntersection)->Arg(10000)->Arg(100000);

// --- Relationship attributes: index vs. RelationshipsOf iteration ------------

struct FlowWorld {
  std::unique_ptr<Database> db;
  seed::AssociationId flows;
};

/// `n` relationships Source -> Sink, each carrying a Weight attribute
/// (values 0..999, every 10th left vague); equality selects ~n/1000.
FlowWorld BuildFlows(int n, bool with_index) {
  seed::schema::SchemaBuilder b("Flows");
  seed::ClassId node =
      b.AddIndependentClass("Node", seed::schema::ValueType::kNone);
  seed::AssociationId flows = b.AddAssociation(
      "Flows", seed::schema::Role{"src", node,
                                  seed::schema::Cardinality::Any()},
      seed::schema::Role{"dst", node, seed::schema::Cardinality::Any()});
  b.AddDependentClass(flows, "Weight", seed::schema::Cardinality(0, 1),
                      seed::schema::ValueType::kInt);
  FlowWorld world{std::make_unique<Database>(*b.Build()), flows};
  // A bipartite (src, dst) grid keeps every relationship pair unique, so
  // creation never trips the duplicate-relationship rule.
  int stripe = std::max(1, static_cast<int>(std::sqrt(n)) + 1);
  std::vector<ObjectId> srcs, dsts;
  for (int i = 0; i < stripe; ++i) {
    srcs.push_back(*world.db->CreateObject(node, "S_" + std::to_string(i)));
    dsts.push_back(*world.db->CreateObject(node, "D_" + std::to_string(i)));
  }
  for (int i = 0; i < n; ++i) {
    auto rel = *world.db->CreateRelationship(world.flows, srcs[i % stripe],
                                             dsts[i / stripe]);
    auto weight = *world.db->CreateSubObject(rel, "Weight");
    if (i % 10 != 9) {
      (void)world.db->SetValue(weight,
                               seed::core::Value::Int(i % 1000));
    }
  }
  if (with_index) {
    (void)world.db->CreateAttributeIndex(
        seed::index::IndexSpec::ForAssociation(world.flows, "Weight"));
  }
  return world;
}

std::vector<Planner::RelCondition> SelectiveWeight() {
  std::vector<Planner::RelCondition> conds;
  conds.push_back(
      {"Weight", Predicate::ValueEquals(seed::core::Value::Int(137))});
  return conds;
}

void BM_Query_RelAttributeScan(benchmark::State& state) {
  auto world = BuildFlows(static_cast<int>(state.range(0)), false);
  Planner planner(world.db.get());
  auto conds = SelectiveWeight();
  if (planner.PlanSelectRelationships(world.flows, conds).uses_index()) {
    abort();
  }
  for (auto _ : state) {
    auto r = planner.SelectRelationshipIds(world.flows, conds);
    benchmark::DoNotOptimize(r);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Query_RelAttributeScan)->Arg(1000)->Arg(10000);

void BM_Query_RelAttributeIndexed(benchmark::State& state) {
  auto world = BuildFlows(static_cast<int>(state.range(0)), true);
  Planner planner(world.db.get());
  auto conds = SelectiveWeight();
  if (!planner.PlanSelectRelationships(world.flows, conds).uses_index()) {
    abort();
  }
  // Identity with the RelationshipsOfAssociation scan, once per setup.
  {
    std::vector<seed::RelationshipId> scanned;
    for (seed::RelationshipId id :
         world.db->RelationshipsOfAssociation(world.flows)) {
      if (planner.EvalRelConditions(id, conds)) scanned.push_back(id);
    }
    if (planner.SelectRelationshipIds(world.flows, conds) != scanned) {
      abort();
    }
  }
  for (auto _ : state) {
    auto r = planner.SelectRelationshipIds(world.flows, conds);
    benchmark::DoNotOptimize(r);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Query_RelAttributeIndexed)->Arg(1000)->Arg(10000);

// --- Join strategies: planner-driven vs. always-materialize ------------------

using seed::query::QueryRelation;

struct JoinBenchWorld {
  std::unique_ptr<Database> db;
  seed::ClassId src_cls, dst_cls;
  seed::AssociationId flows;
  QueryRelation all_src, all_dst, small_src, small_dst;
};

/// `n` relationships with uniform per-src `degree` (0 = sqrt(n) layout)
/// over the matching Src/Dst extents, plus 10-tuple driver relations on
/// each side — the shape where a selective Select feeds a join against a
/// big association.
JoinBenchWorld BuildJoinBench(int n, int degree = 0) {
  seed::schema::SchemaBuilder b("JoinBench");
  seed::ClassId src_cls =
      b.AddIndependentClass("Src", seed::schema::ValueType::kNone);
  seed::ClassId dst_cls =
      b.AddIndependentClass("Dst", seed::schema::ValueType::kNone);
  seed::AssociationId flows = b.AddAssociation(
      "Flows",
      seed::schema::Role{"src", src_cls, seed::schema::Cardinality::Any()},
      seed::schema::Role{"dst", dst_cls, seed::schema::Cardinality::Any()});
  JoinBenchWorld world{std::make_unique<Database>(*b.Build()), src_cls,
                       dst_cls, flows, {}, {}, {}, {}};
  int stripe = degree > 0 ? std::max(1, n / degree)
                          : std::max(1, static_cast<int>(std::sqrt(n)));
  degree = std::max(1, n / stripe);
  std::vector<ObjectId> srcs, dsts;
  for (int i = 0; i < stripe; ++i) {
    srcs.push_back(*world.db->CreateObject(src_cls, "S" + std::to_string(i)));
    dsts.push_back(*world.db->CreateObject(dst_cls, "D" + std::to_string(i)));
  }
  for (int i = 0; i < stripe; ++i) {
    for (int j = 0; j < degree; ++j) {
      (void)*world.db->CreateRelationship(flows, srcs[i],
                                          dsts[(i + j) % stripe]);
    }
  }
  world.all_src.attributes = {"s"};
  for (ObjectId id : srcs) world.all_src.tuples.push_back({id});
  world.all_dst.attributes = {"d"};
  for (ObjectId id : dsts) world.all_dst.tuples.push_back({id});
  world.small_src.attributes = {"s"};
  world.small_dst.attributes = {"d"};
  for (int i = 0; i < 10 && i < stripe; ++i) {
    world.small_src.tuples.push_back({srcs[i]});
    world.small_dst.tuples.push_back({dsts[i]});
  }
  return world;
}

seed::query::Algebra::JoinOptions MaterializeOptions(int left_role) {
  // The pre-planner join: hash join, right build side, whatever the
  // input sizes — always materializes the association adjacency.
  seed::query::Algebra::JoinOptions options;
  options.method = seed::query::Algebra::JoinOptions::Method::kHash;
  options.build_side = seed::query::Algebra::JoinOptions::Side::kRight;
  options.left_role = left_role;
  return options;
}

/// Selective driver, old path: materialize all `n` relationships to join
/// 10 tuples.
void BM_Query_JoinSmallDriverMaterialize(benchmark::State& state) {
  auto world = BuildJoinBench(static_cast<int>(state.range(0)), 10);
  Algebra algebra(world.db.get());
  for (auto _ : state) {
    auto r = algebra.RelationshipJoin(world.small_src, "s", world.flows,
                                      world.all_dst, "d",
                                      MaterializeOptions(0));
    benchmark::DoNotOptimize(r);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Query_JoinSmallDriverMaterialize)->Arg(10000)->Arg(100000);

/// Selective driver, planned: PlanJoin picks the index-nested-loop from
/// the 10-tuple side and never touches the association extent.
void BM_Query_JoinSmallDriverPlanned(benchmark::State& state) {
  auto world = BuildJoinBench(static_cast<int>(state.range(0)), 10);
  Planner planner(world.db.get());
  Algebra algebra(world.db.get());
  auto plan = planner.PlanJoin(world.flows, world.small_src.size(),
                               world.all_dst.size());
  if (plan.strategy !=
      Planner::JoinPlan::Strategy::kIndexNestedLoopLeft) {
    abort();
  }
  // Identity with the materializing path, once per setup.
  {
    auto planned = *planner.Join(world.small_src, "s", world.flows,
                                 world.all_dst, "d");
    auto materialized = *algebra.RelationshipJoin(
        world.small_src, "s", world.flows, world.all_dst, "d",
        MaterializeOptions(0));
    if (planned.tuples != materialized.tuples) abort();
  }
  for (auto _ : state) {
    auto r = planner.Join(world.small_src, "s", world.flows, world.all_dst,
                          "d");
    benchmark::DoNotOptimize(r);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Query_JoinSmallDriverPlanned)->Arg(10000)->Arg(100000);

/// The reverse direction (left side bound to role 1): small Dst driver
/// against the same association, old path vs. planned.
void BM_Query_JoinReverseMaterialize(benchmark::State& state) {
  auto world = BuildJoinBench(static_cast<int>(state.range(0)), 10);
  Algebra algebra(world.db.get());
  for (auto _ : state) {
    auto r = algebra.RelationshipJoin(world.small_dst, "d", world.flows,
                                      world.all_src, "s",
                                      MaterializeOptions(1));
    benchmark::DoNotOptimize(r);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Query_JoinReverseMaterialize)->Arg(10000)->Arg(100000);

void BM_Query_JoinReversePlanned(benchmark::State& state) {
  auto world = BuildJoinBench(static_cast<int>(state.range(0)), 10);
  Planner planner(world.db.get());
  Algebra algebra(world.db.get());
  auto plan = planner.PlanJoin(world.flows, world.small_dst.size(),
                               world.all_src.size(), 1);
  if (plan.strategy !=
      Planner::JoinPlan::Strategy::kIndexNestedLoopLeft) {
    abort();
  }
  {
    auto planned = *planner.Join(world.small_dst, "d", world.flows,
                                 world.all_src, "s", 1);
    auto materialized = *algebra.RelationshipJoin(
        world.small_dst, "d", world.flows, world.all_src, "s",
        MaterializeOptions(1));
    if (planned.tuples != materialized.tuples) abort();
  }
  for (auto _ : state) {
    auto r = planner.Join(world.small_dst, "d", world.flows, world.all_src,
                          "s", 1);
    benchmark::DoNotOptimize(r);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Query_JoinReversePlanned)->Arg(10000)->Arg(100000);

/// Extent-scale inputs over a sparse (degree-2) association: the planner
/// keeps the hash join — one adjacency pass beats per-tuple probing —
/// guarding against INL being chosen blindly.
void BM_Query_JoinLargeInputsPlanned(benchmark::State& state) {
  auto world = BuildJoinBench(static_cast<int>(state.range(0)), 2);
  Planner planner(world.db.get());
  Planner::JoinPlan plan;
  auto r0 = planner.Join(world.all_src, "s", world.flows, world.all_dst,
                         "d", 0, &plan);
  if (!r0.ok() ||
      (plan.strategy != Planner::JoinPlan::Strategy::kHashBuildRight &&
       plan.strategy != Planner::JoinPlan::Strategy::kHashBuildLeft)) {
    abort();
  }
  for (auto _ : state) {
    auto r = planner.Join(world.all_src, "s", world.flows, world.all_dst,
                          "d");
    benchmark::DoNotOptimize(r);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Query_JoinLargeInputsPlanned)->Arg(10000);

// --- Join pipelines: cost-chosen hop ordering vs. textual order --------------

struct PipelineWorld {
  std::unique_ptr<Database> db;
  seed::AssociationId big, tiny;
  std::vector<QueryRelation> inputs;                // a, b, c extents
  std::vector<Planner::PipelineHop> hops;           // A-Big-B, B-Tiny-C
};

/// A skewed 3-class / 2-association chain A -Big- B -Tiny- C: `n` Big
/// edges spread over the full A/B extents, 10 Tiny edges into a 5-object
/// C extent. The selective hop is written LAST, so the textual order
/// materializes all `n` Big edges before Tiny prunes them; the cost
/// ordering runs Tiny first and drives Big from the tiny intermediate.
PipelineWorld BuildPipeline(int n) {
  seed::schema::SchemaBuilder b("PipelineBench");
  seed::ClassId a_cls =
      b.AddIndependentClass("A", seed::schema::ValueType::kNone);
  seed::ClassId b_cls =
      b.AddIndependentClass("B", seed::schema::ValueType::kNone);
  seed::ClassId c_cls =
      b.AddIndependentClass("C", seed::schema::ValueType::kNone);
  seed::AssociationId big = b.AddAssociation(
      "Big", seed::schema::Role{"a", a_cls, seed::schema::Cardinality::Any()},
      seed::schema::Role{"b", b_cls, seed::schema::Cardinality::Any()});
  seed::AssociationId tiny = b.AddAssociation(
      "Tiny", seed::schema::Role{"b", b_cls, seed::schema::Cardinality::Any()},
      seed::schema::Role{"c", c_cls, seed::schema::Cardinality::Any()});
  PipelineWorld world{std::make_unique<Database>(*b.Build()), big, tiny,
                      {}, {}};
  int stripe = std::max(100, n / 10);
  std::vector<ObjectId> as, bs, cs;
  for (int i = 0; i < stripe; ++i) {
    as.push_back(*world.db->CreateObject(a_cls, "A" + std::to_string(i)));
    bs.push_back(*world.db->CreateObject(b_cls, "B" + std::to_string(i)));
  }
  for (int i = 0; i < 5; ++i) {
    cs.push_back(*world.db->CreateObject(c_cls, "C" + std::to_string(i)));
  }
  int degree = std::max(1, n / stripe);
  for (int i = 0; i < stripe; ++i) {
    for (int j = 0; j < degree; ++j) {
      (void)*world.db->CreateRelationship(big, as[i],
                                          bs[(i + j * 7) % stripe]);
    }
  }
  for (int i = 0; i < 10; ++i) {
    (void)*world.db->CreateRelationship(tiny, bs[i], cs[i % 5]);
  }
  auto extent = [](const std::vector<ObjectId>& ids, const char* attr) {
    QueryRelation rel;
    rel.attributes = {attr};
    for (ObjectId id : ids) rel.tuples.push_back({id});
    return rel;
  };
  world.inputs = {extent(as, "a"), extent(bs, "b"), extent(cs, "c")};
  world.hops = {{big, 0, a_cls, b_cls}, {tiny, 0, b_cls, c_cls}};
  return world;
}

/// The chain's ground truth, nested loops over both association extents.
std::vector<std::vector<ObjectId>> NaivePipeline(const PipelineWorld& w) {
  std::vector<std::vector<ObjectId>> out;
  for (seed::RelationshipId r1 :
       w.db->RelationshipsOfAssociation(w.big)) {
    auto big_rel = *w.db->GetRelationship(r1);
    for (seed::RelationshipId r2 :
         w.db->RelationshipsOfAssociation(w.tiny)) {
      auto tiny_rel = *w.db->GetRelationship(r2);
      if (big_rel->ends[1] != tiny_rel->ends[0]) continue;
      out.push_back({big_rel->ends[0], big_rel->ends[1],
                     tiny_rel->ends[1]});
    }
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

/// Textual hop order: Big first, Tiny prunes the n-tuple intermediate.
void BM_Query_PipelineTextualOrder(benchmark::State& state) {
  auto world = BuildPipeline(static_cast<int>(state.range(0)));
  Planner planner(world.db.get());
  {
    auto r = planner.JoinPipelineInOrder(world.inputs, world.hops, {0, 1});
    if (!r.ok() || r->tuples != NaivePipeline(world)) abort();
  }
  for (auto _ : state) {
    auto r = planner.JoinPipelineInOrder(world.inputs, world.hops, {0, 1});
    benchmark::DoNotOptimize(r);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Query_PipelineTextualOrder)->Arg(10000)->Arg(100000);

/// Cost-chosen order: PlanJoinPipeline must run the selective Tiny hop
/// first even though it is written last.
void BM_Query_PipelineCostOrder(benchmark::State& state) {
  auto world = BuildPipeline(static_cast<int>(state.range(0)));
  Planner planner(world.db.get());
  {
    std::vector<size_t> sizes;
    for (const auto& in : world.inputs) sizes.push_back(in.size());
    auto plan = planner.PlanJoinPipeline(world.hops, sizes);
    if (plan.root == nullptr || plan.HopOrder() != std::vector<int>({1, 0})) {
      abort();
    }
    auto r = planner.JoinPipeline(world.inputs, world.hops);
    if (!r.ok() || r->tuples != NaivePipeline(world)) abort();
  }
  for (auto _ : state) {
    auto r = planner.JoinPipeline(world.inputs, world.hops);
    benchmark::DoNotOptimize(r);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Query_PipelineCostOrder)->Arg(10000)->Arg(100000);

// --- Long chains: DP plan vs. textual order vs. exhaustive left-deep ---------
//
// The 5-hop skewed chain (beyond the old 3-hop cap) from
// bench/skewed_chain.h — the same world the CI plan-quality smoke gate
// checks. The textual order drags dense intermediates through the whole
// chain; the exhaustive left-deep search (the PR-4 approach, here over
// 16 orders) reduces one side before each dense crossing; the DP can
// additionally reduce BOTH sides of a dense hop via a bushy segment x
// segment join.

using seed::bench::BuildSkewedChain;

/// Textual hop order: dense intermediates survive until the tiny hops
/// finally prune them.
void BM_Query_LongChainTextualOrder(benchmark::State& state) {
  auto world = BuildSkewedChain(static_cast<int>(state.range(0)));
  Planner planner(world.db.get());
  std::vector<int> textual{0, 1, 2, 3, 4};
  Planner::PhysicalPlan plan;
  auto reference =
      planner.JoinPipelineInOrder(world.inputs, world.hops, textual, &plan);
  if (!reference.ok()) abort();
  for (auto _ : state) {
    auto r = planner.JoinPipelineInOrder(world.inputs, world.hops, textual);
    benchmark::DoNotOptimize(r);
  }
  state.counters["rows_visited"] =
      static_cast<double>(plan.RowsVisited());
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Query_LongChainTextualOrder)->Arg(10000)->Arg(100000);

/// PR-4 style exhaustive-on-prefix: enumerate every left-deep ordering
/// (16 for 5 hops), keep the cheapest by modeled cost, execute that.
void BM_Query_LongChainExhaustiveLeftDeep(benchmark::State& state) {
  auto world = BuildSkewedChain(static_cast<int>(state.range(0)));
  Planner planner(world.db.get());
  auto reference = planner.JoinPipelineInOrder(world.inputs, world.hops,
                                               {0, 1, 2, 3, 4});
  if (!reference.ok()) abort();
  std::vector<int> best_order;
  double best_cost = 0.0;
  Planner::PhysicalPlan best_plan;
  for (const auto& order : Planner::LeftDeepOrders(world.hops.size())) {
    Planner::PhysicalPlan plan;
    auto r = planner.JoinPipelineInOrder(world.inputs, world.hops, order,
                                         &plan);
    if (!r.ok() || r->tuples != reference->tuples) abort();
    if (best_order.empty() || plan.est_cost < best_cost) {
      best_order = order;
      best_cost = plan.est_cost;
      best_plan = std::move(plan);
    }
  }
  for (auto _ : state) {
    auto r = planner.JoinPipelineInOrder(world.inputs, world.hops,
                                         best_order);
    benchmark::DoNotOptimize(r);
  }
  state.counters["rows_visited"] =
      static_cast<double>(best_plan.RowsVisited());
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Query_LongChainExhaustiveLeftDeep)->Arg(10000)->Arg(100000);

/// The DP plan (possibly bushy), identity-checked against the textual
/// fold.
void BM_Query_LongChainDP(benchmark::State& state) {
  auto world = BuildSkewedChain(static_cast<int>(state.range(0)));
  Planner planner(world.db.get());
  auto reference = planner.JoinPipelineInOrder(world.inputs, world.hops,
                                               {0, 1, 2, 3, 4});
  Planner::PhysicalPlan plan;
  auto r0 = planner.JoinPipeline(world.inputs, world.hops, &plan);
  if (!reference.ok() || !r0.ok() || r0->tuples != reference->tuples) {
    abort();
  }
  for (auto _ : state) {
    auto r = planner.JoinPipeline(world.inputs, world.hops);
    benchmark::DoNotOptimize(r);
  }
  state.counters["rows_visited"] = static_cast<double>(plan.RowsVisited());
  state.counters["bushy"] = plan.HasBushyJoin() ? 1.0 : 0.0;
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Query_LongChainDP)->Arg(10000)->Arg(100000);

}  // namespace

// Custom main instead of BENCHMARK_MAIN(): --metrics-out=<file> dumps the
// engine metrics registry after the run, so a bench invocation leaves the
// same JSON trail the trajectory driver does.
int main(int argc, char** argv) {
  std::string metrics_out;
  std::vector<char*> passthrough;
  for (int i = 0; i < argc; ++i) {
    if (std::strncmp(argv[i], "--metrics-out=", 14) == 0) {
      metrics_out = argv[i] + 14;
    } else {
      passthrough.push_back(argv[i]);
    }
  }
  int pargc = static_cast<int>(passthrough.size());
  benchmark::Initialize(&pargc, passthrough.data());
  if (benchmark::ReportUnrecognizedArguments(pargc, passthrough.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  if (!metrics_out.empty()) {
    std::ofstream out(metrics_out);
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", metrics_out.c_str());
      return 1;
    }
    out << seed::obs::MetricsRegistry::Global().ToJson() << "\n";
  }
  return 0;
}
