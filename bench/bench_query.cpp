// Extension benchmark: the ER algebra (Parent & Spaccapietra-style),
// measuring selection, relationship join and pipeline queries over a
// generated specification.

#include <benchmark/benchmark.h>

#include "query/algebra.h"
#include "query/predicate.h"
#include "spades/spec_schema.h"

namespace {

using seed::core::Database;
using seed::ObjectId;
using seed::query::Algebra;
using seed::query::Predicate;

seed::spades::Fig3Schema& Fig3() {
  static auto schema = *seed::spades::BuildFig3Schema();
  return schema;
}

std::unique_ptr<Database> BuildWorld(int n) {
  auto db = std::make_unique<Database>(Fig3().schema);
  std::vector<ObjectId> data, actions;
  for (int i = 0; i < n; ++i) {
    data.push_back(*db->CreateObject(Fig3().ids.input_data,
                                     "Data_" + std::to_string(i)));
    actions.push_back(*db->CreateObject(Fig3().ids.action,
                                        "Action_" + std::to_string(i)));
  }
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < 4; ++j) {
      (void)db->CreateRelationship(Fig3().ids.read, data[(i + j * 7) % n],
                                   actions[i]);
    }
  }
  return db;
}

void BM_Query_ClassExtent(benchmark::State& state) {
  auto db = BuildWorld(static_cast<int>(state.range(0)));
  Algebra algebra(db.get());
  for (auto _ : state) {
    auto r = algebra.ClassExtent(Fig3().ids.thing, "t");
    benchmark::DoNotOptimize(r);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0) * 2);
}
BENCHMARK(BM_Query_ClassExtent)->Arg(100)->Arg(1000);

void BM_Query_Select(benchmark::State& state) {
  auto db = BuildWorld(static_cast<int>(state.range(0)));
  Algebra algebra(db.get());
  auto extent = algebra.ClassExtent(Fig3().ids.data, "d");
  auto pred = Predicate::NameContains("7");
  for (auto _ : state) {
    auto r = algebra.Select(extent, "d", pred);
    benchmark::DoNotOptimize(r);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Query_Select)->Arg(100)->Arg(1000);

void BM_Query_RelationshipJoin(benchmark::State& state) {
  auto db = BuildWorld(static_cast<int>(state.range(0)));
  Algebra algebra(db.get());
  auto data = algebra.ClassExtent(Fig3().ids.data, "d");
  auto actions = algebra.ClassExtent(Fig3().ids.action, "a");
  for (auto _ : state) {
    auto r = algebra.RelationshipJoin(data, "d", Fig3().ids.access, actions,
                                      "a");
    benchmark::DoNotOptimize(r);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0) * 4);
}
BENCHMARK(BM_Query_RelationshipJoin)->Arg(100)->Arg(1000);

void BM_Query_Pipeline(benchmark::State& state) {
  auto db = BuildWorld(static_cast<int>(state.range(0)));
  Algebra algebra(db.get());
  for (auto _ : state) {
    auto data = algebra.ClassExtent(Fig3().ids.data, "d");
    auto actions = algebra.ClassExtent(Fig3().ids.action, "a");
    auto joined = *algebra.RelationshipJoin(data, "d", Fig3().ids.access,
                                            actions, "a");
    auto filtered =
        *algebra.Select(joined, "d", Predicate::NameContains("1"));
    auto result = *algebra.Project(filtered, {"a"});
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Query_Pipeline)->Arg(100)->Arg(1000);

void BM_Query_CartesianProduct(benchmark::State& state) {
  auto db = BuildWorld(static_cast<int>(state.range(0)));
  Algebra algebra(db.get());
  auto data = algebra.ClassExtent(Fig3().ids.data, "d");
  auto actions = algebra.ClassExtent(Fig3().ids.action, "a");
  for (auto _ : state) {
    auto r = algebra.CartesianProduct(data, actions);
    benchmark::DoNotOptimize(r);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0) *
                          state.range(0));
}
BENCHMARK(BM_Query_CartesianProduct)->Arg(32)->Arg(100);

}  // namespace

BENCHMARK_MAIN();
