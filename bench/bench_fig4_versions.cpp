// Experiment F4 / C3 (paper Fig. 4): versions.
//
// The paper's claim: "When creating a version we do not save the complete
// database. We only store those objects and relationships that have been
// changed." This bench shows (a) snapshot cost tracks the changed-set
// size, not the database size; (b) delta storage is much smaller than
// full copies; (c) view materialization cost vs. history length.

#include <benchmark/benchmark.h>

#include "core/database.h"
#include "core/item_codec.h"
#include "spades/spec_schema.h"
#include "version/version_manager.h"

namespace {

using seed::core::Database;
using seed::core::Value;
using seed::ObjectId;
using seed::version::VersionManager;

seed::spades::Fig3Schema& Fig3() {
  static auto schema = *seed::spades::BuildFig3Schema();
  return schema;
}

/// Populates `n` actions with descriptions; returns the description ids.
std::vector<ObjectId> Populate(Database* db, int n) {
  std::vector<ObjectId> descs;
  for (int i = 0; i < n; ++i) {
    ObjectId a = *db->CreateObject(Fig3().ids.action,
                                   "Action_" + std::to_string(i));
    ObjectId d = *db->CreateSubObject(a, "Description");
    (void)db->SetValue(d, Value::String("step " + std::to_string(i)));
    descs.push_back(d);
  }
  return descs;
}

/// Snapshot cost with a FIXED changed set (16 items) over a database of
/// range(0) objects: the paper's delta design makes this flat in DB size.
void BM_Fig4_SnapshotFixedDelta(benchmark::State& state) {
  Database db(Fig3().schema);
  VersionManager vm(&db);
  auto descs = Populate(&db, static_cast<int>(state.range(0)));
  (void)vm.CreateVersion();  // baseline version holding everything
  int round = 0;
  for (auto _ : state) {
    for (int i = 0; i < 16; ++i) {
      (void)db.SetValue(descs[i],
                        Value::String("r" + std::to_string(round)));
    }
    ++round;
    auto v = vm.CreateVersion();
    benchmark::DoNotOptimize(v);
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["db_objects"] = static_cast<double>(db.num_live_objects());
}
BENCHMARK(BM_Fig4_SnapshotFixedDelta)->Arg(64)->Arg(512)->Arg(4096);

/// Snapshot cost proportional to the changed-set size.
void BM_Fig4_SnapshotScalesWithDelta(benchmark::State& state) {
  Database db(Fig3().schema);
  VersionManager vm(&db);
  auto descs = Populate(&db, 4096);
  (void)vm.CreateVersion();
  int round = 0;
  for (auto _ : state) {
    for (int i = 0; i < state.range(0); ++i) {
      (void)db.SetValue(descs[i],
                        Value::String("r" + std::to_string(round)));
    }
    ++round;
    auto v = vm.CreateVersion();
    benchmark::DoNotOptimize(v);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Fig4_SnapshotScalesWithDelta)->Arg(16)->Arg(128)->Arg(1024);

/// Delta storage footprint vs. hypothetical full-copy storage, printed as
/// counters after a 50-version history with 1% churn per version.
void BM_Fig4_DeltaVsFullCopyBytes(benchmark::State& state) {
  for (auto _ : state) {
    Database db(Fig3().schema);
    VersionManager vm(&db);
    auto descs = Populate(&db, 1000);
    (void)vm.CreateVersion();
    std::uint64_t full_copy_bytes = 0;
    for (int v = 0; v < 50; ++v) {
      for (int i = 0; i < 10; ++i) {
        (void)db.SetValue(descs[(v * 10 + i) % descs.size()],
                          Value::String("v" + std::to_string(v)));
      }
      (void)vm.CreateVersion();
      // What a naive full-copy scheme would write for this version:
      std::uint64_t snapshot = 0;
      db.ForEachObject([&](const seed::core::ObjectItem& obj) {
        snapshot += seed::core::ItemCodec::EncodeObjectToString(obj).size();
      });
      db.ForEachRelationship([&](const seed::core::RelationshipItem& rel) {
        snapshot +=
            seed::core::ItemCodec::EncodeRelationshipToString(rel).size();
      });
      full_copy_bytes += snapshot;
    }
    state.counters["delta_bytes"] =
        static_cast<double>(vm.StoredBytes());
    state.counters["full_copy_bytes"] =
        static_cast<double>(full_copy_bytes);
    state.counters["savings_x"] =
        static_cast<double>(full_copy_bytes) /
        static_cast<double>(vm.StoredBytes());
  }
  state.SetItemsProcessed(state.iterations() * 50);
}
BENCHMARK(BM_Fig4_DeltaVsFullCopyBytes)->Iterations(1);

/// View materialization cost vs. history length (the view walks the
/// ancestor path and resolves the newest payload per item).
void BM_Fig4_MaterializeView(benchmark::State& state) {
  Database db(Fig3().schema);
  VersionManager vm(&db);
  auto descs = Populate(&db, 256);
  seed::version::VersionId last;
  for (int v = 0; v < state.range(0); ++v) {
    for (int i = 0; i < 8; ++i) {
      (void)db.SetValue(descs[(v * 8 + i) % descs.size()],
                        Value::String("v" + std::to_string(v)));
    }
    last = *vm.CreateVersion();
  }
  for (auto _ : state) {
    auto view = vm.MaterializeView(last);
    benchmark::DoNotOptimize(view);
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["history_len"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_Fig4_MaterializeView)->Arg(4)->Arg(16)->Arg(64);

/// Alternative selection (rollback to a historical version).
void BM_Fig4_SelectVersion(benchmark::State& state) {
  Database db(Fig3().schema);
  VersionManager vm(&db);
  auto descs = Populate(&db, 256);
  auto v1 = *vm.CreateVersion();
  for (int i = 0; i < 64; ++i) {
    (void)db.SetValue(descs[i], Value::String("new"));
  }
  auto v2 = *vm.CreateVersion();
  bool flip = false;
  for (auto _ : state) {
    benchmark::DoNotOptimize(vm.SelectVersion(flip ? v1 : v2));
    flip = !flip;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Fig4_SelectVersion);

/// History navigation: "find all versions of object X beginning with v".
void BM_Fig4_HistoryRetrieval(benchmark::State& state) {
  Database db(Fig3().schema);
  VersionManager vm(&db);
  ObjectId a = *db.CreateObject(Fig3().ids.action, "AlarmHandler");
  ObjectId d = *db.CreateSubObject(a, "Description");
  for (int v = 0; v < state.range(0); ++v) {
    (void)db.SetValue(d, Value::String("v" + std::to_string(v)));
    (void)vm.CreateVersion();
  }
  for (auto _ : state) {
    auto hits = vm.VersionsOfObject(d);
    benchmark::DoNotOptimize(hits);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Fig4_HistoryRetrieval)->Arg(8)->Arg(64);

}  // namespace

BENCHMARK_MAIN();
